#include "src/fleet/virtual_device.hpp"

#include <utility>

#include "src/common/check.hpp"
#include "src/common/checkpoint.hpp"
#include "src/common/checkpoint_error.hpp"
#include "src/common/rng.hpp"
#include "src/common/strformat.hpp"

namespace ftpim::fleet {
namespace {

/// Per-device aging stream id is the pool's OWN replica seed (see
/// ReplicaPool::advance_aging), so the aging master seed is fleet-shared.
AgingConfig aging_config_for(const FleetConfig& config, const DeviceProfile& profile) {
  AgingConfig aging;
  aging.p_new_per_interval = profile.aging_per_interval;
  aging.interval_batches = config.interval_batches;
  aging.sa0_fraction = config.sa0_fraction;
  aging.seed = derive_seed(config.seed, kAgingStream);
  return aging;
}

serve::ReplicaPoolConfig pool_config_for(const FleetConfig& config, const DeviceProfile& profile,
                                         int index) {
  serve::ReplicaPoolConfig pool;
  pool.num_replicas = 1;
  pool.p_sa = profile.p_sa;
  pool.sa0_fraction = config.sa0_fraction;
  pool.injector = config.injector;
  pool.seed = derive_seed(derive_seed(config.seed, kPoolStream), static_cast<std::uint64_t>(index));
  if (profile.datapath == Datapath::kQuantized) {
    pool.engine = serve::ReplicaEngine::kQuantized;
    pool.quantized = config.quantized;
    // Detection is part of the lifecycle model: DeviceStatus::abft_flagged
    // and the detection-driven policy need the checksums armed.
    pool.quantized.abft.enabled = true;
  }
  return pool;
}

}  // namespace

VirtualDevice::VirtualDevice(const Module& source, const FleetConfig& config, int index)
    : config_(&config),
      index_(index),
      profile_(draw_profile(config, index)),
      pool_(std::make_unique<serve::ReplicaPool>(source, pool_config_for(config, profile_, index))),
      aging_(aging_config_for(config, profile_)),
      cells_(pool_->defect_map(0).cell_count()),
      window_(config.policy_config.window),
      transients_(DefectMap::empty(pool_->defect_map(0).cell_count())) {}

DeviceTick VirtualDevice::step(const RepairPolicy& policy, std::int64_t tick,
                               const CanarySet& probe) {
  DeviceTick out;
  if (!alive()) return out;
  out.was_alive = true;

  // 1. Serve this tick's traffic slice (advances the aging clock).
  served_batches_ += profile_.batches_per_tick;

  // 2. Age the die up to the interval the batch clock reached.
  const std::int64_t added =
      pool_->advance_aging(0, aging_, aging_.intervals_at(served_batches_));
  out.aged_cells = added;
  aged_cells_ += added;
  if (added > 0 && quantized() && transients_.fault_count() > 0) {
    // advance_aging re-applied the persistent map over the engines; layer
    // the surviving upsets back on top (last-write-wins on overlap).
    pool_->deployment(0)->apply_defect_map(transients_);
  }

  // 3. Transient upsets (quantized only — see FleetConfig). The burst is a
  // pure function of (seed, device, tick), so a resumed sweep replays the
  // exact upsets an uninterrupted one took.
  if (quantized() && config_->p_transient_per_tick > 0.0) {
    Rng rng(derive_seed(derive_seed(derive_seed(config_->seed, kTransientStream),
                                    static_cast<std::uint64_t>(index_)),
                        static_cast<std::uint64_t>(tick)));
    const StuckAtFaultModel upset(config_->p_transient_per_tick, config_->sa0_fraction);
    const std::int64_t landed = transients_.merge_from(DefectMap::sample(cells_, upset, rng));
    out.transient_cells = landed;
    transient_cells_ += landed;
    if (landed > 0) pool_->deployment(0)->apply_defect_map(transients_);
  }

  // 4. Probe: the device's real inference over the fleet-shared canary set.
  const Tensor logits = pool_->replica(0).forward(probe.inputs, /*training=*/false);
  const int passes = score_canary(logits, probe);
  out.probe_accuracy =
      static_cast<double>(passes) / static_cast<double>(probe.count());
  last_probe_accuracy_ = out.probe_accuracy;
  for (int i = 0; i < passes; ++i) window_.record(true);
  for (int i = passes; i < static_cast<int>(probe.count()); ++i) window_.record(false);

  // 5. ABFT drain: did the probe's MVM checksums ring?
  bool flagged = false;
  if (quantized() && pool_->abft_armed()) {
    for (const abft::TileFaultReport& report : pool_->take_abft_reports(0)) {
      if (!report.clean()) flagged = true;
    }
  }
  if (flagged) {
    ++detections_;
    ++consecutive_detections_;
    out.detections = 1;
  } else {
    consecutive_detections_ = 0;
  }
  ++ticks_since_heal_;

  // 6. Death check: below the floor = Kaplan-Meier event, permanent. The
  // policy never sees the tick that killed the device (no post-mortem
  // repairs — a device that degraded this far is presumed unrecoverable in
  // the field).
  if (out.probe_accuracy < config_->accuracy_floor) {
    dead_at_ = tick;
    out.died = true;
    return out;
  }

  // 7. Maintenance: the policy reads this tick's status and acts.
  DeviceStatus status;
  status.tick = tick;
  status.probe_accuracy = out.probe_accuracy;
  status.window_score = window_.success_rate();
  status.window_size = window_.size();
  status.abft_flagged = flagged;
  status.consecutive_detections = consecutive_detections_;
  status.ticks_since_heal = ticks_since_heal_;
  switch (policy.decide(status)) {
    case RepairActionKind::kNone: break;
    case RepairActionKind::kScrub:
      do_refresh();
      out.scrubs = 1;
      break;
    case RepairActionKind::kRepair:
      do_repair();
      out.repairs = 1;
      break;
  }
  return out;
}

void VirtualDevice::do_refresh() {
  // Re-program the die: transients heal, persistent faults come back, ABFT
  // baseline (manufacturing reference) stays. The window is NOT reset — the
  // device is the same die, so its history still predicts its health — and
  // neither is the detection streak: persistent damage that keeps ringing
  // through refreshes is exactly what escalates to a repair.
  pool_->refresh(0);
  transients_ = DefectMap::empty(cells_);
  ++scrubs_;
  ticks_since_heal_ = 0;
}

void VirtualDevice::do_repair() {
  // Swap the device: fresh die, fresh manufacturing map (next generation),
  // fresh aging clock. Everything observed about the old die is forgotten.
  pool_->repair(0);
  transients_ = DefectMap::empty(cells_);
  window_.reset();
  served_batches_ = 0;
  consecutive_detections_ = 0;
  ++repairs_;
  ticks_since_heal_ = 0;
}

void VirtualDevice::encode_state(ByteWriter& out) const {
  out.i64(index_);
  out.i64(dead_at_);
  out.i64(pool_->generation(0));
  out.i64(pool_->aged_intervals(0));
  out.i64(served_batches_);
  out.i64(ticks_since_heal_);
  out.i64(consecutive_detections_);
  out.i64(repairs_);
  out.i64(scrubs_);
  out.i64(detections_);
  out.i64(aged_cells_);
  out.i64(transient_cells_);
  out.f64(last_probe_accuracy_);
  window_.encode(out);
  transients_.encode(out);
  // Echo of the persistent map: redundant with (config, generation,
  // aged_intervals) by construction, which is the point — restore_state
  // replays those and cross-checks against this echo.
  pool_->defect_map(0).encode(out);
}

void VirtualDevice::restore_state(ByteReader& in) {
  const std::int64_t recorded_index = in.i64();
  if (recorded_index != index_) {
    throw CheckpointError(CheckpointErrorKind::kStateMismatch, "FLDV",
                          detail::format_msg("device record %lld restored into device %d",
                                             static_cast<long long>(recorded_index), index_));
  }
  dead_at_ = in.i64();
  const std::int64_t generation = in.i64();
  const std::int64_t aged_intervals = in.i64();
  if (generation < 0 || aged_intervals < 0) {
    throw CheckpointError(CheckpointErrorKind::kFormat, "FLDV",
                          "negative generation or aged_intervals");
  }
  served_batches_ = in.i64();
  ticks_since_heal_ = in.i64();
  consecutive_detections_ = in.i64();
  repairs_ = in.i64();
  scrubs_ = in.i64();
  detections_ = in.i64();
  aged_cells_ = in.i64();
  transient_cells_ = in.i64();
  last_probe_accuracy_ = in.f64();
  window_ = OutcomeWindow::decode(in);
  DefectMap transients = DefectMap::decode(in);
  DefectMap map_echo = DefectMap::decode(in);

  // Replay the lifecycle: each repair advances the pool one generation, then
  // aging grows the final die's map to where the checkpoint left it.
  for (std::int64_t g = 0; g < generation; ++g) pool_->repair(0);
  pool_->advance_aging(0, aging_, aged_intervals);

  // Cross-check: the replayed map must MATCH the checkpoint's echo exactly,
  // or the checkpoint came from a different config/seed than this fleet.
  ByteWriter replayed;
  pool_->defect_map(0).encode(replayed);
  ByteWriter recorded;
  map_echo.encode(recorded);
  if (replayed.bytes() != recorded.bytes()) {
    throw CheckpointError(
        CheckpointErrorKind::kStateMismatch, "FLDV",
        detail::format_msg("device %d: replayed defect map (gen %lld, %lld intervals) does not "
                           "match the checkpointed map",
                           index_, static_cast<long long>(generation),
                           static_cast<long long>(aged_intervals)));
  }

  if (transients.cell_count() != cells_) {
    throw CheckpointError(CheckpointErrorKind::kStateMismatch, "FLDV",
                          detail::format_msg("device %d: transient map covers %lld cells, die has "
                                             "%lld",
                                             index_, static_cast<long long>(transients.cell_count()),
                                             static_cast<long long>(cells_)));
  }
  transients_ = std::move(transients);
  if (quantized() && transients_.fault_count() > 0) {
    pool_->deployment(0)->apply_defect_map(transients_);
  }
}

}  // namespace ftpim::fleet
