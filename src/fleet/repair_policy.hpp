// Pluggable in-service repair policies for the fleet simulator.
//
// Every simulated tick each live device summarizes its observable state into
// a DeviceStatus — the probe accuracy it just measured, its sliding-window
// score, whether ABFT flagged the tick, how long the current detection streak
// is, and how long since the die was last re-programmed — and asks the
// policy what to do about it. The answer is one of three actions:
//
//   kNone    keep serving;
//   kScrub   background refresh (ReplicaPool::refresh): re-program the die
//            and re-apply the persistent map — transient damage heals,
//            manufacturing/aging faults come back; cheap;
//   kRepair  swap the device (ReplicaPool::repair): new die, new map, next
//            seed generation; expensive.
//
// Policies are STATELESS deciders shared by every device of a simulator: all
// evolving inputs arrive through DeviceStatus, which lives in the device —
// so checkpointing the devices checkpoints the policy, and a policy object
// is safe to consult from concurrent device workers.
//
// The four built-ins bracket the fleet-maintenance design space the paper's
// mass-produced-device story implies:
//   never_repair            the paper's one-shot deployment baseline;
//   canary_gated            today's serve-layer behavior (window score below
//                           a threshold -> swap), see src/serve;
//   scheduled_refresh       periodic background re-programming, the
//                           simulator-side mirror of the serve layer's
//                           ScrubPolicy::kPeriodic knob;
//   detection_driven_scrub  ABFT-reactive: scrub when flagged, swap once a
//                           detection streak outlives the retry budget
//                           (mirrors the serve maintain() ladder).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace ftpim::fleet {

/// What a policy can ask a device to do at the end of a tick.
enum class RepairActionKind : std::uint8_t {
  kNone = 0,
  kScrub = 1,   ///< whole-die refresh; persistent faults resurface
  kRepair = 2,  ///< device swap; fresh die + fresh defect map
};

[[nodiscard]] const char* to_string(RepairActionKind action) noexcept;

/// The built-in policies (see file comment).
enum class RepairPolicyKind : std::uint8_t {
  kNeverRepair = 0,
  kCanaryGated = 1,
  kScheduledRefresh = 2,
  kDetectionDrivenScrub = 3,
};

/// Stable snake_case names ("never_repair", ...) — used by the example's
/// CLI knob, bench labels, and the checkpoint config echo.
[[nodiscard]] const char* to_string(RepairPolicyKind kind) noexcept;

/// Inverse of to_string; throws ContractViolation on an unknown name.
[[nodiscard]] RepairPolicyKind parse_repair_policy(const std::string& name);

/// All built-ins in a fixed sweep order (policy-comparison tables iterate
/// this so every artifact lists policies identically).
inline constexpr RepairPolicyKind kAllRepairPolicies[] = {
    RepairPolicyKind::kNeverRepair,
    RepairPolicyKind::kCanaryGated,
    RepairPolicyKind::kScheduledRefresh,
    RepairPolicyKind::kDetectionDrivenScrub,
};

/// Everything a device can observe about itself at the end of one tick —
/// the full policy input surface.
struct DeviceStatus {
  std::int64_t tick = 0;
  /// Probe accuracy measured THIS tick (agreement with the clean model).
  double probe_accuracy = 1.0;
  /// Sliding-window success rate over recent probe samples (1.0 while the
  /// window is empty — absence of evidence is not evidence of ill health).
  double window_score = 1.0;
  int window_size = 0;  ///< probe outcomes currently in the window
  /// ABFT flagged at least one checksum mismatch this tick (always false on
  /// float-datapath devices, which carry no checksums).
  bool abft_flagged = false;
  /// Flagged ticks in a row, including this one; a clean tick resets it.
  std::int64_t consecutive_detections = 0;
  /// Ticks since the die was last re-programmed (scrub, repair, or birth).
  std::int64_t ticks_since_heal = 0;
};

/// Shared knobs of the built-in policies. One struct (rather than one per
/// policy) so a sweep compares policies under a single declared budget.
struct RepairPolicyConfig {
  /// Capacity of each device's sliding probe-outcome window (OutcomeWindow);
  /// window_score is computed over at most this many recent samples.
  int window = 32;
  /// canary_gated: evidence gate — no swap until this many probe outcomes.
  int min_samples = 8;
  /// canary_gated: swap the device when window_score drops below this.
  double repair_below = 0.80;
  /// scheduled_refresh: re-program the die every this many ticks.
  std::int64_t refresh_every_ticks = 16;
  /// detection_driven_scrub: flagged ticks answered with a scrub before the
  /// streak escalates to a repair (mirrors HealthConfig::max_scrub_retries).
  int max_scrub_retries = 3;
  /// Relative cost units for the policy-comparison table: one repair is
  /// worth this many scrubs' worth of maintenance budget.
  double repair_cost = 25.0;
  double scrub_cost = 1.0;

  void validate() const;
};

class RepairPolicy {
 public:
  virtual ~RepairPolicy() = default;
  [[nodiscard]] virtual RepairPolicyKind kind() const noexcept = 0;
  /// Pure decision: same status -> same action, no internal state. Safe to
  /// call concurrently from device workers.
  [[nodiscard]] virtual RepairActionKind decide(const DeviceStatus& status) const = 0;
};

/// Factory for the built-ins. `config` is validated here.
[[nodiscard]] std::unique_ptr<RepairPolicy> make_repair_policy(RepairPolicyKind kind,
                                                               const RepairPolicyConfig& config);

}  // namespace ftpim::fleet
