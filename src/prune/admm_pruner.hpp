// ADMM weight pruning (Zhang et al., ECCV 2018).
//
// Solves   min_W  loss(W)   s.t.  W in S (per-layer top-k sparsity sets)
// by alternating:
//   W-step: SGD on loss(W) + (rho/2)||W - Z + U||^2  (the proximal term is
//           added to gradients via regularize_grads(), called by the trainer
//           after each backward pass),
//   Z-step: Z = Pi_S(W + U)  (Euclidean projection = per-layer top-k),
//   U-step: U = U + W - Z    (scaled dual ascent),
// then a hard projection to the final masks followed by masked fine-tuning.
//
// The class is a training hook: construct it over a model, call
// regularize_grads() every iteration and dual_update() at the cadence of your
// choice (per epoch in the paper recipe), then finalize() to obtain masks.
#pragma once

#include <vector>

#include "src/nn/module.hpp"
#include "src/prune/sparsity.hpp"

namespace ftpim {

struct AdmmConfig {
  double sparsity = 0.7;  ///< per-layer sparsity target, in [0,1)
  float rho = 1e-3f;      ///< augmented-Lagrangian penalty
};

class AdmmPruner {
 public:
  AdmmPruner(Module& root, const AdmmConfig& config);

  /// Adds rho*(W - Z + U) to each prunable parameter's gradient.
  void regularize_grads();

  /// Z/U updates; call once per epoch (or per chosen ADMM step).
  void dual_update();

  /// Hard-projects weights onto the sparsity set and returns keep-masks for
  /// masked fine-tuning. After this, regularize_grads() becomes a no-op.
  std::vector<PruneMask> finalize();

  /// ||W - Z||_2 over all layers — ADMM primal residual, for convergence logs.
  [[nodiscard]] double primal_residual() const;

  [[nodiscard]] const AdmmConfig& config() const noexcept { return config_; }

 private:
  std::vector<Param*> params_;
  std::vector<Tensor> z_;
  std::vector<Tensor> u_;
  std::vector<std::int64_t> keep_counts_;
  AdmmConfig config_;
  bool finalized_ = false;
};

}  // namespace ftpim
