// Sparsity utilities shared by the pruners.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/nn/module.hpp"
#include "src/tensor/tensor.hpp"

namespace ftpim {

/// Binary keep-mask (1 = keep, 0 = pruned) plus bookkeeping.
struct PruneMask {
  const Param* param = nullptr;  ///< which parameter this mask belongs to
  Tensor mask;                   ///< same shape as the parameter
  [[nodiscard]] std::int64_t kept() const;
  [[nodiscard]] std::int64_t pruned() const;
};

/// Fraction of zero weights among crossbar weights of a network.
double model_sparsity(Module& root);

/// Crossbar-weight parameters of a network (the prunable set).
std::vector<Param*> prunable_params(Module& root);

/// Builds a keep-mask retaining the `keep_count` largest-magnitude entries of
/// `values` (global threshold within the tensor).
Tensor magnitude_keep_mask(const Tensor& values, std::int64_t keep_count);

/// Projects `values` onto the sparsity constraint: zeroes all but the
/// `keep_count` largest-magnitude entries (Euclidean projection used by ADMM).
Tensor project_topk(const Tensor& values, std::int64_t keep_count);

/// Applies mask elementwise: value *= mask.
void apply_mask(Tensor& values, const Tensor& mask);

/// Human-readable per-layer sparsity report.
std::string sparsity_report(Module& root);

}  // namespace ftpim
