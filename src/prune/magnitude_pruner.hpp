// One-shot magnitude pruning (Han et al., NeurIPS 2015).
//
// Zeroes the smallest-magnitude weights to reach a target sparsity, either
// globally across all prunable tensors (one threshold) or per layer (uniform
// sparsity in every tensor). Returns the keep-masks so the fine-tuning
// optimizer can freeze pruned positions (Sgd::set_mask).
#pragma once

#include <vector>

#include "src/nn/module.hpp"
#include "src/prune/sparsity.hpp"

namespace ftpim {

enum class PruneScope { kGlobal, kPerLayer };

struct MagnitudePruneConfig {
  double sparsity = 0.5;  ///< fraction of weights to remove, in [0,1)
  PruneScope scope = PruneScope::kGlobal;
};

/// Prunes in place and returns the masks (parallel to prunable_params(root)).
std::vector<PruneMask> magnitude_prune(Module& root, const MagnitudePruneConfig& config);

}  // namespace ftpim
