#include "src/prune/magnitude_pruner.hpp"

#include "src/common/check.hpp"

#include <algorithm>
#include <cmath>

namespace ftpim {
namespace {

std::vector<PruneMask> per_layer_prune(const std::vector<Param*>& params, double sparsity) {
  std::vector<PruneMask> masks;
  masks.reserve(params.size());
  for (Param* p : params) {
    const auto keep = static_cast<std::int64_t>(
        std::llround(static_cast<double>(p->value.numel()) * (1.0 - sparsity)));
    PruneMask m;
    m.param = p;
    m.mask = magnitude_keep_mask(p->value, std::clamp<std::int64_t>(keep, 0, p->value.numel()));
    apply_mask(p->value, m.mask);
    masks.push_back(std::move(m));
  }
  return masks;
}

std::vector<PruneMask> global_prune(const std::vector<Param*>& params, double sparsity) {
  // Single magnitude threshold across all tensors: concatenate magnitudes.
  std::int64_t total = 0;
  for (const Param* p : params) total += p->value.numel();
  Tensor all(Shape{total});
  std::int64_t off = 0;
  for (const Param* p : params) {
    const float* v = p->value.data();
    float* dst = all.data() + off;
    for (std::int64_t i = 0; i < p->value.numel(); ++i) dst[i] = v[i];
    off += p->value.numel();
  }
  const auto keep = static_cast<std::int64_t>(
      std::llround(static_cast<double>(total) * (1.0 - sparsity)));
  const Tensor global_mask =
      magnitude_keep_mask(all, std::clamp<std::int64_t>(keep, 0, total));

  std::vector<PruneMask> masks;
  masks.reserve(params.size());
  off = 0;
  for (Param* p : params) {
    PruneMask m;
    m.param = p;
    m.mask = Tensor(p->value.shape());
    const float* src = global_mask.data() + off;
    float* dst = m.mask.data();
    for (std::int64_t i = 0; i < p->value.numel(); ++i) dst[i] = src[i];
    off += p->value.numel();
    apply_mask(p->value, m.mask);
    masks.push_back(std::move(m));
  }
  return masks;
}

}  // namespace

std::vector<PruneMask> magnitude_prune(Module& root, const MagnitudePruneConfig& config) {
  FTPIM_CHECK(!(config.sparsity < 0.0 || config.sparsity >= 1.0), "magnitude_prune: sparsity must be in [0,1)");
  const std::vector<Param*> params = prunable_params(root);
  FTPIM_CHECK(!(params.empty()), "magnitude_prune: no prunable parameters");
  return config.scope == PruneScope::kGlobal ? global_prune(params, config.sparsity)
                                             : per_layer_prune(params, config.sparsity);
}

}  // namespace ftpim
