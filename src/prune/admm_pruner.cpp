#include "src/prune/admm_pruner.hpp"

#include "src/common/check.hpp"

#include <algorithm>
#include <cmath>

namespace ftpim {

AdmmPruner::AdmmPruner(Module& root, const AdmmConfig& config)
    : params_(prunable_params(root)), config_(config) {
  FTPIM_CHECK(!(config.sparsity < 0.0 || config.sparsity >= 1.0), "AdmmPruner: sparsity must be in [0,1)");
  FTPIM_CHECK(!(config.rho <= 0.0f), "AdmmPruner: rho must be positive");
  FTPIM_CHECK(!(params_.empty()), "AdmmPruner: no prunable parameters");
  z_.reserve(params_.size());
  u_.reserve(params_.size());
  keep_counts_.reserve(params_.size());
  for (const Param* p : params_) {
    const auto keep = static_cast<std::int64_t>(
        std::llround(static_cast<double>(p->value.numel()) * (1.0 - config.sparsity)));
    keep_counts_.push_back(std::clamp<std::int64_t>(keep, 1, p->value.numel()));
    z_.push_back(project_topk(p->value, keep_counts_.back()));
    u_.emplace_back(p->value.shape());  // zeros
  }
}

void AdmmPruner::regularize_grads() {
  if (finalized_) return;
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Param* p = params_[k];
    float* g = p->grad.data();
    const float* w = p->value.data();
    const float* z = z_[k].data();
    const float* u = u_[k].data();
    for (std::int64_t i = 0; i < p->value.numel(); ++i) {
      g[i] += config_.rho * (w[i] - z[i] + u[i]);
    }
  }
}

void AdmmPruner::dual_update() {
  if (finalized_) return;
  for (std::size_t k = 0; k < params_.size(); ++k) {
    const Param* p = params_[k];
    // Z = Pi_S(W + U)
    Tensor wu = p->value;
    const float* u = u_[k].data();
    float* t = wu.data();
    for (std::int64_t i = 0; i < wu.numel(); ++i) t[i] += u[i];
    z_[k] = project_topk(wu, keep_counts_[k]);
    // U += W - Z
    float* ud = u_[k].data();
    const float* w = p->value.data();
    const float* z = z_[k].data();
    for (std::int64_t i = 0; i < wu.numel(); ++i) ud[i] += w[i] - z[i];
  }
}

std::vector<PruneMask> AdmmPruner::finalize() {
  finalized_ = true;
  std::vector<PruneMask> masks;
  masks.reserve(params_.size());
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Param* p = params_[k];
    PruneMask m;
    m.param = p;
    m.mask = magnitude_keep_mask(p->value, keep_counts_[k]);
    apply_mask(p->value, m.mask);
    masks.push_back(std::move(m));
  }
  return masks;
}

double AdmmPruner::primal_residual() const {
  double sq = 0.0;
  for (std::size_t k = 0; k < params_.size(); ++k) {
    const float* w = params_[k]->value.data();
    const float* z = z_[k].data();
    for (std::int64_t i = 0; i < params_[k]->value.numel(); ++i) {
      const double d = static_cast<double>(w[i]) - z[i];
      sq += d * d;
    }
  }
  return std::sqrt(sq);
}

}  // namespace ftpim
