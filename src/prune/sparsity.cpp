#include "src/prune/sparsity.hpp"

#include "src/common/check.hpp"

#include <cmath>
#include <sstream>

#include "src/tensor/tensor_ops.hpp"

namespace ftpim {

std::int64_t PruneMask::kept() const {
  std::int64_t n = 0;
  const float* m = mask.data();
  for (std::int64_t i = 0; i < mask.numel(); ++i) {
    if (m[i] != 0.0f) ++n;
  }
  return n;
}

std::int64_t PruneMask::pruned() const { return mask.numel() - kept(); }

std::vector<Param*> prunable_params(Module& root) {
  std::vector<Param*> out;
  for (Param* p : parameters_of(root)) {
    if (p->kind == ParamKind::kCrossbarWeight) out.push_back(p);
  }
  return out;
}

double model_sparsity(Module& root) {
  std::int64_t zeros = 0, total = 0;
  for (const Param* p : prunable_params(root)) {
    zeros += count_zeros(p->value);
    total += p->value.numel();
  }
  return total > 0 ? static_cast<double>(zeros) / static_cast<double>(total) : 0.0;
}

Tensor magnitude_keep_mask(const Tensor& values, std::int64_t keep_count) {
  FTPIM_CHECK(!(keep_count < 0 || keep_count > values.numel()), "magnitude_keep_mask: keep_count out of range");
  Tensor mask(values.shape());
  if (keep_count == 0) return mask;
  const float threshold = kth_largest_abs(values, keep_count);
  const float* v = values.data();
  float* m = mask.data();
  std::int64_t kept = 0;
  // Two passes: strictly-above first, then fill ties at the threshold until
  // exactly keep_count entries are kept (deterministic: first-index order).
  for (std::int64_t i = 0; i < values.numel(); ++i) {
    if (std::fabs(v[i]) > threshold) {
      m[i] = 1.0f;
      ++kept;
    }
  }
  for (std::int64_t i = 0; i < values.numel() && kept < keep_count; ++i) {
    if (m[i] == 0.0f && std::fabs(v[i]) == threshold) {
      m[i] = 1.0f;
      ++kept;
    }
  }
  return mask;
}

Tensor project_topk(const Tensor& values, std::int64_t keep_count) {
  const Tensor mask = magnitude_keep_mask(values, keep_count);
  Tensor out = values;
  apply_mask(out, mask);
  return out;
}

void apply_mask(Tensor& values, const Tensor& mask) {
  FTPIM_CHECK(!(values.shape() != mask.shape()), "apply_mask: shape mismatch");
  float* v = values.data();
  const float* m = mask.data();
  for (std::int64_t i = 0; i < values.numel(); ++i) v[i] *= m[i];
}

std::string sparsity_report(Module& root) {
  std::ostringstream oss;
  oss << "layer sparsity:\n";
  for (const Param* p : prunable_params(root)) {
    const double s =
        static_cast<double>(count_zeros(p->value)) / static_cast<double>(p->value.numel());
    oss << "  " << p->name << "  " << shape_to_string(p->value.shape()) << "  "
        << static_cast<int>(s * 1000.0) / 10.0 << "%\n";
  }
  oss << "  overall: " << static_cast<int>(model_sparsity(root) * 1000.0) / 10.0 << "%\n";
  return oss.str();
}

}  // namespace ftpim
