// Base training loop: SGD + cosine LR + augmentation, with per-iteration and
// per-epoch hooks that the fault-tolerant trainer and the ADMM pruner attach
// to. Matches the paper's recipe (SGD momentum, initial LR 0.1, cosine
// schedule) at configurable scale.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "src/data/dataloader.hpp"
#include "src/data/dataset.hpp"
#include "src/nn/loss.hpp"
#include "src/nn/module.hpp"
#include "src/optim/lr_scheduler.hpp"
#include "src/optim/sgd.hpp"

namespace ftpim {

struct TrainHooks {
  /// Called before each forward pass; may mutate model weights (fault
  /// injection). Arguments: (epoch, iteration-within-epoch).
  std::function<void(int, std::int64_t)> before_forward;
  /// Called after backward with grads accumulated, before the optimizer step.
  std::function<void(int, std::int64_t)> after_backward;
  /// Called after each optimizer step.
  std::function<void(int, std::int64_t)> after_step;
  /// Called at the end of each epoch with the mean training loss.
  std::function<void(int, float)> after_epoch;
};

struct TrainConfig {
  int epochs = 4;
  std::int64_t batch_size = 64;
  SgdConfig sgd{.lr = 0.1f, .momentum = 0.9f, .weight_decay = 5e-4f, .grad_clip = 5.0f};
  bool cosine_lr = true;       ///< else constant at sgd.lr
  float label_smoothing = 0.0f;
  AugmentConfig augment{.crop_pad = 2, .hflip = true, .enabled = true};
  std::uint64_t seed = 1234;
  bool verbose = false;
};

struct TrainStats {
  std::vector<float> epoch_losses;
  [[nodiscard]] float final_loss() const {
    return epoch_losses.empty() ? 0.0f : epoch_losses.back();
  }
};

class Trainer {
 public:
  /// `model` and `train_data` must outlive the trainer.
  Trainer(Module& model, const Dataset& train_data, TrainConfig config);

  void set_hooks(TrainHooks hooks) { hooks_ = std::move(hooks); }
  [[nodiscard]] Sgd& optimizer() noexcept { return *optimizer_; }
  /// Exposed for checkpoint/resume: the loader's augmentation Rng is part of
  /// the training state a mid-run checkpoint must capture.
  [[nodiscard]] DataLoader& loader() noexcept { return loader_; }
  [[nodiscard]] const TrainConfig& config() const noexcept { return config_; }

  /// Runs the full schedule. `epoch_offset`/`total_epochs` let multi-stage
  /// callers (progressive FT training) share one cosine schedule across
  /// stages; defaults cover the single-stage case.
  TrainStats run(int epoch_offset = 0, int total_epochs = -1);

  /// Runs one epoch (0-based global epoch index for the LR schedule);
  /// returns the mean loss.
  float run_epoch(int epoch, int total_epochs);

 private:
  Module& model_;
  const Dataset& train_data_;
  TrainConfig config_;
  DataLoader loader_;
  SoftmaxCrossEntropy loss_;
  std::unique_ptr<Sgd> optimizer_;
  std::unique_ptr<LrSchedule> schedule_;
  TrainHooks hooks_;
};

}  // namespace ftpim
