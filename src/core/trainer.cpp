#include "src/core/trainer.hpp"

#include "src/common/logging.hpp"
#include "src/common/timer.hpp"

namespace ftpim {

Trainer::Trainer(Module& model, const Dataset& train_data, TrainConfig config)
    : model_(model),
      train_data_(train_data),
      config_(config),
      loader_(train_data, config.batch_size, /*shuffle=*/true, config.seed, config.augment),
      loss_(config.label_smoothing) {
  optimizer_ = std::make_unique<Sgd>(parameters_of(model_), config_.sgd);
  if (config_.cosine_lr) {
    schedule_ = std::make_unique<CosineSchedule>(config_.sgd.lr, config_.sgd.lr * 1e-3f);
  } else {
    schedule_ = std::make_unique<ConstantSchedule>(config_.sgd.lr);
  }
}

float Trainer::run_epoch(int epoch, int total_epochs) {
  optimizer_->set_lr(schedule_->lr_at(epoch, total_epochs));
  loader_.start_epoch(epoch);
  const std::int64_t batches = loader_.batches_per_epoch();
  double loss_sum = 0.0;
  std::int64_t samples = 0;
  for (std::int64_t it = 0; it < batches; ++it) {
    const Batch batch = loader_.batch(it);
    if (hooks_.before_forward) hooks_.before_forward(epoch, it);
    zero_grads(model_);
    const Tensor logits = model_.forward(batch.images, /*training=*/true);
    const LossResult lr = loss_.forward(logits, batch.labels);
    model_.backward(lr.grad_logits);
    if (hooks_.after_backward) hooks_.after_backward(epoch, it);
    optimizer_->step();
    if (hooks_.after_step) hooks_.after_step(epoch, it);
    loss_sum += static_cast<double>(lr.loss) * static_cast<double>(batch.size());
    samples += batch.size();
  }
  const float mean_loss =
      samples > 0 ? static_cast<float>(loss_sum / static_cast<double>(samples)) : 0.0f;
  if (hooks_.after_epoch) hooks_.after_epoch(epoch, mean_loss);
  return mean_loss;
}

TrainStats Trainer::run(int epoch_offset, int total_epochs) {
  if (total_epochs < 0) total_epochs = config_.epochs;
  TrainStats stats;
  Timer timer;
  for (int e = 0; e < config_.epochs; ++e) {
    const float loss = run_epoch(epoch_offset + e, total_epochs);
    stats.epoch_losses.push_back(loss);
    if (config_.verbose) {
      log_info("epoch %d/%d loss=%.4f lr=%.4f (%.1fs)", epoch_offset + e + 1, total_epochs, loss,
               optimizer_->lr(), timer.seconds());
    }
  }
  return stats;
}

}  // namespace ftpim
