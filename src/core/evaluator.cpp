#include "src/core/evaluator.hpp"

#include "src/common/check.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "src/common/parallel.hpp"
#include "src/data/dataloader.hpp"
#include "src/tensor/tensor_ops.hpp"

namespace ftpim {

double evaluate_accuracy(Module& model, const Dataset& data, std::int64_t batch_size) {
  FTPIM_CHECK_GT(batch_size, std::int64_t{0}, "evaluate_accuracy: batch_size");
  if (data.size() == 0) return 0.0;
  DataLoader loader(data, batch_size, /*shuffle=*/false, /*seed=*/0);
  std::int64_t hits = 0;
  const std::int64_t batches = loader.batches_per_epoch();
  for (std::int64_t b = 0; b < batches; ++b) {
    const Batch batch = loader.batch(b);
    const Tensor logits = model.forward(batch.images, /*training=*/false);
    for (std::int64_t r = 0; r < batch.size(); ++r) {
      if (argmax_row(logits, r) == batch.labels[static_cast<std::size_t>(r)]) ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(data.size());
}

DefectEvalResult evaluate_under_defects(const Module& model, const Dataset& data, double p_sa,
                                        const DefectEvalConfig& config) {
  // Protocol contracts up front: a bad rate or config must fail loudly, not
  // skew a 100-run mean (Algorithm 1 lines 31-38).
  FTPIM_CHECK(p_sa >= 0.0 && p_sa <= 1.0, "evaluate_under_defects: p_sa %g outside [0,1]", p_sa);
  FTPIM_CHECK(config.sa0_fraction >= 0.0 && config.sa0_fraction <= 1.0,
              "evaluate_under_defects: sa0_fraction outside [0,1]");
  FTPIM_CHECK_GT(config.batch_size, std::int64_t{0}, "evaluate_under_defects: batch_size");
  config.injector.range.validate();
  DefectEvalResult result;
  if (config.num_runs <= 0) return result;
  const StuckAtFaultModel fault_model(p_sa, config.sa0_fraction);
  const std::size_t runs = static_cast<std::size_t>(config.num_runs);
  result.run_accs.assign(runs, 0.0);
  std::vector<double> run_rates(runs, 0.0);

  // Fan the Monte-Carlo device runs out over workers. Each worker gets a
  // private deep clone — faulted weights, BN buffers, and forward caches are
  // all per-worker — and a reusable injection session, so runs inside a
  // chunk share buffers instead of reallocating snapshots. Run `r`'s fault
  // map depends only on derive_seed(config.seed, r); the chunk layout only
  // decides who computes which run, never what that run computes.
  parallel_for_chunks(
      0, runs,
      [&](std::size_t lo, std::size_t hi) {
        const std::unique_ptr<Module> local = model.clone();
        FaultInjectionSession session(*local);
        for (std::size_t run = lo; run < hi; ++run) {
          Rng rng(derive_seed(config.seed, static_cast<std::uint64_t>(run)));
          session.inject(fault_model, config.injector, rng);
          result.run_accs[run] = evaluate_accuracy(*local, data, config.batch_size);
          run_rates[run] = session.stats().cell_fault_rate();
          session.restore();
        }
      },
      /*min_parallel_trip=*/2);

  // Aggregate in run order so reductions are bit-identical at any worker
  // count (same FP addition order as the historical serial loop).
  double sum = 0.0, sq = 0.0, rate_sum = 0.0;
  for (std::size_t run = 0; run < runs; ++run) {
    const double acc = result.run_accs[run];
    sum += acc;
    sq += acc * acc;
    rate_sum += run_rates[run];
    result.min_acc = std::min(result.min_acc, acc);
    result.max_acc = std::max(result.max_acc, acc);
  }
  const double n = static_cast<double>(config.num_runs);
  result.mean_acc = sum / n;
  result.std_acc = std::sqrt(std::max(0.0, sq / n - result.mean_acc * result.mean_acc));
  result.mean_cell_fault_rate = rate_sum / n;
  return result;
}

}  // namespace ftpim
