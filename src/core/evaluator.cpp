#include "src/core/evaluator.hpp"

#include <algorithm>
#include <cmath>

#include "src/data/dataloader.hpp"
#include "src/tensor/tensor_ops.hpp"

namespace ftpim {

double evaluate_accuracy(Module& model, const Dataset& data, std::int64_t batch_size) {
  if (data.size() == 0) return 0.0;
  DataLoader loader(data, batch_size, /*shuffle=*/false, /*seed=*/0);
  std::int64_t hits = 0;
  const std::int64_t batches = loader.batches_per_epoch();
  for (std::int64_t b = 0; b < batches; ++b) {
    const Batch batch = loader.batch(b);
    const Tensor logits = model.forward(batch.images, /*training=*/false);
    for (std::int64_t r = 0; r < batch.size(); ++r) {
      if (argmax_row(logits, r) == batch.labels[static_cast<std::size_t>(r)]) ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(data.size());
}

DefectEvalResult evaluate_under_defects(Module& model, const Dataset& data, double p_sa,
                                        const DefectEvalConfig& config) {
  DefectEvalResult result;
  if (config.num_runs <= 0) return result;
  const StuckAtFaultModel fault_model(p_sa, config.sa0_fraction);
  double sum = 0.0, sq = 0.0, rate_sum = 0.0;
  result.run_accs.reserve(static_cast<std::size_t>(config.num_runs));
  for (int run = 0; run < config.num_runs; ++run) {
    Rng rng(derive_seed(config.seed, static_cast<std::uint64_t>(run)));
    double acc;
    {
      const WeightFaultGuard guard(model, fault_model, config.injector, rng);
      acc = evaluate_accuracy(model, data, config.batch_size);
      rate_sum += guard.stats().cell_fault_rate();
    }  // guard restores clean weights here
    result.run_accs.push_back(acc);
    sum += acc;
    sq += acc * acc;
    result.min_acc = std::min(result.min_acc, acc);
    result.max_acc = std::max(result.max_acc, acc);
  }
  const double n = static_cast<double>(config.num_runs);
  result.mean_acc = sum / n;
  result.std_acc = std::sqrt(std::max(0.0, sq / n - result.mean_acc * result.mean_acc));
  result.mean_cell_fault_rate = rate_sum / n;
  return result;
}

}  // namespace ftpim
