#include "src/core/evaluator.hpp"

#include "src/common/check.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "src/common/parallel.hpp"
#include "src/data/dataloader.hpp"
#include "src/reram/qinfer/deploy.hpp"
#include "src/tensor/tensor_ops.hpp"

namespace ftpim {

double evaluate_accuracy(Module& model, const Dataset& data, std::int64_t batch_size) {
  FTPIM_CHECK_GT(batch_size, std::int64_t{0}, "evaluate_accuracy: batch_size");
  if (data.size() == 0) return 0.0;
  DataLoader loader(data, batch_size, /*shuffle=*/false, /*seed=*/0);
  std::int64_t hits = 0;
  const std::int64_t batches = loader.batches_per_epoch();
  for (std::int64_t b = 0; b < batches; ++b) {
    const Batch batch = loader.batch(b);
    const Tensor logits = model.forward(batch.images, /*training=*/false);
    for (std::int64_t r = 0; r < batch.size(); ++r) {
      if (argmax_row(logits, r) == batch.labels[static_cast<std::size_t>(r)]) ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(data.size());
}

DefectEvalResult evaluate_under_defects(const Module& model, const Dataset& data, double p_sa,
                                        const DefectEvalConfig& config) {
  // Protocol contracts up front: a bad rate or config must fail loudly, not
  // skew a 100-run mean (Algorithm 1 lines 31-38).
  FTPIM_CHECK(p_sa >= 0.0 && p_sa <= 1.0, "evaluate_under_defects: p_sa %g outside [0,1]", p_sa);
  FTPIM_CHECK(config.sa0_fraction >= 0.0 && config.sa0_fraction <= 1.0,
              "evaluate_under_defects: sa0_fraction outside [0,1]");
  FTPIM_CHECK_GT(config.batch_size, std::int64_t{0}, "evaluate_under_defects: batch_size");
  config.injector.range.validate();
  FTPIM_CHECK(!config.abft_detection || config.engine == EvalEngine::kQuantized,
              "evaluate_under_defects: abft_detection requires the quantized engine");
  DefectEvalResult result;
  if (config.num_runs <= 0) return result;
  const StuckAtFaultModel fault_model(p_sa, config.sa0_fraction);
  const std::size_t runs = static_cast<std::size_t>(config.num_runs);
  result.run_accs.assign(runs, 0.0);
  std::vector<double> run_rates(runs, 0.0);
  std::vector<std::uint8_t> run_detected(runs, 0);
  std::vector<std::int64_t> run_flagged(runs, 0);
  qinfer::QuantizedEngineConfig engine_config = config.quantized;
  if (config.abft_detection) engine_config.abft.enabled = true;

  // Fan the Monte-Carlo device runs out over workers. Each worker gets a
  // private deep clone — faulted weights, BN buffers, and forward caches are
  // all per-worker — and a reusable injection session, so runs inside a
  // chunk share buffers instead of reallocating snapshots. Run `r`'s fault
  // map depends only on derive_seed(config.seed, r); the chunk layout only
  // decides who computes which run, never what that run computes.
  //
  // On the quantized path the clone is deployed onto int8 crossbar engines
  // once per worker; each run then swaps defect maps in the level domain
  // (non-destructive — programmed levels are kept separately from faults),
  // so no re-programming happens between runs.
  parallel_for_chunks(
      0, runs,
      [&](std::size_t lo, std::size_t hi) {
        const std::unique_ptr<Module> local = model.clone();
        if (config.engine == EvalEngine::kQuantized) {
          const auto deployment = qinfer::deploy_quantized(*local, engine_config);
          for (std::size_t run = lo; run < hi; ++run) {
            Rng rng(derive_seed(config.seed, static_cast<std::uint64_t>(run)));
            const DefectMap map = DefectMap::sample(deployment->cell_count(), fault_model, rng);
            deployment->apply_defect_map(map);
            result.run_accs[run] = evaluate_accuracy(*local, data, config.batch_size);
            run_rates[run] = map.observed_rate();
            if (config.abft_detection) {
              // Checksums were programmed against CLEAN levels at deploy (no
              // rebaseline between runs), so this drains exactly what run
              // `run`'s injected map tripped during the accuracy pass.
              std::int64_t mismatches = 0, flagged = 0;
              for (const abft::TileFaultReport& r : deployment->take_abft_reports()) {
                mismatches += r.mismatches;
                flagged += r.flagged_tiles();
              }
              run_detected[run] = mismatches > 0 ? 1 : 0;
              run_flagged[run] = flagged;
            }
            deployment->clear_defects();
          }
          return;
        }
        FaultInjectionSession session(*local);
        for (std::size_t run = lo; run < hi; ++run) {
          Rng rng(derive_seed(config.seed, static_cast<std::uint64_t>(run)));
          session.inject(fault_model, config.injector, rng);
          result.run_accs[run] = evaluate_accuracy(*local, data, config.batch_size);
          run_rates[run] = session.stats().cell_fault_rate();
          session.restore();
        }
      },
      /*min_parallel_trip=*/2);

  // Aggregate in run order so reductions are bit-identical at any worker
  // count (same FP addition order as the historical serial loop).
  double sum = 0.0, sq = 0.0, rate_sum = 0.0;
  for (std::size_t run = 0; run < runs; ++run) {
    const double acc = result.run_accs[run];
    sum += acc;
    sq += acc * acc;
    rate_sum += run_rates[run];
    result.min_acc = std::min(result.min_acc, acc);
    result.max_acc = std::max(result.max_acc, acc);
  }
  const double n = static_cast<double>(config.num_runs);
  result.mean_acc = sum / n;
  result.std_acc = std::sqrt(std::max(0.0, sq / n - result.mean_acc * result.mean_acc));
  result.mean_cell_fault_rate = rate_sum / n;
  if (config.abft_detection) {
    std::int64_t detected = 0, flagged = 0;
    for (std::size_t run = 0; run < runs; ++run) {
      detected += run_detected[run];
      flagged += run_flagged[run];
    }
    result.detection_rate = static_cast<double>(detected) / n;
    result.mean_flagged_tiles = static_cast<double>(flagged) / n;
  }
  return result;
}

CanarySet make_canary_set(const Module& clean_model, const Shape& sample_shape, int count,
                          std::uint64_t seed) {
  FTPIM_CHECK_GT(count, 0, "make_canary_set: count");
  FTPIM_CHECK(!sample_shape.empty(), "make_canary_set: sample_shape must be non-empty");
  Shape batched;
  batched.reserve(sample_shape.size() + 1);
  batched.push_back(count);
  batched.insert(batched.end(), sample_shape.begin(), sample_shape.end());
  CanarySet canary;
  canary.inputs = Tensor(batched);
  Rng rng(seed);
  for (std::int64_t i = 0; i < canary.inputs.numel(); ++i) {
    canary.inputs[i] = rng.uniform(-1.0f, 1.0f);
  }
  const std::unique_ptr<Module> probe = clean_model.clone();
  canary.golden = probe->forward(canary.inputs, /*training=*/false);
  FTPIM_CHECK_EQ(canary.golden.dim(0), static_cast<std::int64_t>(count),
                 "make_canary_set: model returned %lld rows for %d inputs",
                 static_cast<long long>(canary.golden.dim(0)), count);
  canary.golden_pred.reserve(static_cast<std::size_t>(count));
  for (std::int64_t r = 0; r < count; ++r) {
    canary.golden_pred.push_back(argmax_row(canary.golden, r));
  }
  return canary;
}

int score_canary(const Tensor& logits, const CanarySet& canary, float max_abs_err) {
  FTPIM_CHECK_EQ(logits.numel(), canary.golden.numel(),
                 "score_canary: logits shape mismatch (%lld values vs golden %lld)",
                 static_cast<long long>(logits.numel()),
                 static_cast<long long>(canary.golden.numel()));
  const std::int64_t rows = canary.count();
  const std::int64_t cols = rows > 0 ? canary.golden.numel() / rows : 0;
  int passed = 0;
  for (std::int64_t r = 0; r < rows; ++r) {
    bool ok;
    if (max_abs_err >= 0.0f) {
      ok = true;
      for (std::int64_t c = 0; c < cols; ++c) {
        if (std::abs(logits[r * cols + c] - canary.golden[r * cols + c]) > max_abs_err) {
          ok = false;
          break;
        }
      }
    } else {
      ok = argmax_row(logits, r) == canary.golden_pred[static_cast<std::size_t>(r)];
    }
    if (ok) ++passed;
  }
  return passed;
}

}  // namespace ftpim
