// Device-specific defect-aware retraining — the per-device baseline the
// paper argues against (L. Xia et al., DAC'17 [5]; see §II-B).
//
// Given ONE physical device whose defect map is known from testing, retrain
// the network with that fixed map applied every iteration: stuck positions
// are pinned to their fault values and receive no gradient, so the free
// weights learn to compensate. This recovers accuracy on THAT device but (a)
// costs a retraining run per manufactured unit and (b) transfers poorly to
// any other device — exactly the versatility gap stochastic FT training
// closes. bench_baseline_device_specific quantifies both effects.
#pragma once

#include <cstdint>

#include "src/core/trainer.hpp"
#include "src/data/dataset.hpp"
#include "src/nn/module.hpp"
#include "src/reram/fault_injector.hpp"
#include "src/reram/fault_model.hpp"

namespace ftpim {

struct DeviceSpecificConfig {
  TrainConfig base{};
  double p_sa = 0.01;
  double sa0_fraction = kPaperSa0Fraction;
  InjectorConfig injector{};
  std::uint64_t defect_master_seed = 555;
  std::uint64_t device_index = 0;  ///< which physical device to retrain for
};

/// Retrains `model` in place against device `config.device_index`'s fixed
/// defect map. The model ends with clean weights (the map is re-applied at
/// deployment/evaluation time).
TrainStats device_specific_retrain(Module& model, const Dataset& train_data,
                                   const DeviceSpecificConfig& config);

/// Accuracy of `model` as deployed on one specific device: applies that
/// device's defect map (deterministic in master seed + index), evaluates,
/// restores.
double evaluate_on_device(Module& model, const Dataset& data, double p_sa,
                          double sa0_fraction, const InjectorConfig& injector,
                          std::uint64_t defect_master_seed, std::uint64_t device_index);

}  // namespace ftpim
