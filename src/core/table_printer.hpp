// Fixed-width text tables for the bench harness, mirroring the paper's
// presentation (Table I highlights the top-3 Acc_defect per testing rate;
// we mark them with '*').
#pragma once

#include <string>
#include <vector>

namespace ftpim {

class TablePrinter {
 public:
  TablePrinter(std::string title, std::vector<std::string> headers);

  /// Adds a data row; values.size() must equal headers.size() - 1 (the first
  /// header names the row-label column). NaN renders as "-".
  void add_row(const std::string& label, const std::vector<double>& values);

  /// Renders the table. highlight_top > 0 stars the k largest values in each
  /// numeric column. `decimals` controls value formatting.
  [[nodiscard]] std::string render(int highlight_top = 0, int decimals = 2) const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::string> labels_;
  std::vector<std::vector<double>> rows_;
};

}  // namespace ftpim
