// Stochastic fault-tolerant training — the paper's core contribution
// (Algorithm 1).
//
// One-shot scheme: retrain for M_epoch epochs, injecting stuck-at faults at
// the final target rate P_sa^T into every forward pass.
//
// Progressive scheme: sweep an ascending list [P_sa^0 ... P_sa^T], training
// M_epoch epochs at each level, which adapts the network to gradually harder
// fault regimes (better Acc_defect at high rates, per Table I).
//
// Injection mechanics per iteration:
//   1. snapshot clean weights, apply Apply_Fault(w, P_sa) (a run-long
//      FaultInjectionSession reuses the snapshot buffers across iterations);
//   2. forward + backward through the faulted weights;
//   3. optionally zero grads at faulted positions (GradMode::kMasked) —
//      default is straight-through, since fault positions re-randomize and
//      every weight must learn to tolerate being stuck;
//   4. restore clean weights, then apply the optimizer step to them.
// Fault positions are refreshed per iteration by default; Algorithm 1's
// per-epoch refresh is available via FaultRefresh::kPerEpoch (see the config
// comment and the bench_ablation_refresh study).
#pragma once

#include <vector>

#include "src/core/trainer.hpp"
#include "src/reram/fault_injector.hpp"
#include "src/reram/fault_model.hpp"

namespace ftpim {

enum class FtScheme { kOneShot, kProgressive };
enum class GradMode { kStraightThrough, kMasked };
enum class FaultRefresh { kPerEpoch, kPerIteration };

struct FtTrainConfig {
  TrainConfig base{};           ///< epochs = M_epoch (per stage for progressive)
  FtScheme scheme = FtScheme::kOneShot;
  double target_p_sa = 0.01;    ///< P_sa^T
  /// Ascending candidate rates for the progressive scheme; when empty, the
  /// default ramp {T/8, T/4, T/2, T} is used. Must end at target_p_sa.
  std::vector<double> progressive_levels;
  GradMode grad_mode = GradMode::kStraightThrough;
  /// Default: redraw fault patterns per iteration. Algorithm 1's pseudocode
  /// draws per epoch, which is equivalent at the paper's 160-epoch budget
  /// (160 patterns) but starves compressed reproduction runs of pattern
  /// diversity (3-epoch run = 3 patterns -> unstable, poor generalization).
  /// bench_ablation_refresh compares both.
  FaultRefresh refresh = FaultRefresh::kPerIteration;
  double sa0_fraction = kPaperSa0Fraction;
  InjectorConfig injector{};
  std::uint64_t fault_seed = 4242;
};

struct FtTrainStats {
  std::vector<double> stage_rates;          ///< P_sa used at each stage
  std::vector<TrainStats> stage_stats;
  double mean_cell_fault_rate = 0.0;        ///< observed across all injections
};

class FaultTolerantTrainer {
 public:
  /// `model` should be a pretrained network (the paper retrains from a
  /// well-trained model); training from scratch also works.
  FaultTolerantTrainer(Module& model, const Dataset& train_data, FtTrainConfig config);

  /// Runs the configured scheme; the model ends with clean (fault-free)
  /// fault-tolerant weights.
  FtTrainStats run();

  /// The stage rate list after defaulting (exposed for tests/logs).
  [[nodiscard]] const std::vector<double>& stage_rates() const noexcept { return stage_rates_; }

 private:
  Module& model_;
  const Dataset& train_data_;
  FtTrainConfig config_;
  std::vector<double> stage_rates_;
};

/// Builds the default progressive ramp for a target rate: {T/8, T/4, T/2, T}.
std::vector<double> default_progressive_ramp(double target_p_sa);

}  // namespace ftpim
