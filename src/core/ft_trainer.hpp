// Stochastic fault-tolerant training — the paper's core contribution
// (Algorithm 1).
//
// One-shot scheme: retrain for M_epoch epochs, injecting stuck-at faults at
// the final target rate P_sa^T into every forward pass.
//
// Progressive scheme: sweep an ascending list [P_sa^0 ... P_sa^T], training
// M_epoch epochs at each level, which adapts the network to gradually harder
// fault regimes (better Acc_defect at high rates, per Table I).
//
// Injection mechanics per iteration:
//   1. snapshot clean weights, apply Apply_Fault(w, P_sa) (a run-long
//      FaultInjectionSession reuses the snapshot buffers across iterations);
//   2. forward + backward through the faulted weights;
//   3. optionally zero grads at faulted positions (GradMode::kMasked) —
//      default is straight-through, since fault positions re-randomize and
//      every weight must learn to tolerate being stuck;
//   4. restore clean weights, then apply the optimizer step to them.
// Fault positions are refreshed per iteration by default; Algorithm 1's
// per-epoch refresh is available via FaultRefresh::kPerEpoch (see the config
// comment and the bench_ablation_refresh study).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/core/trainer.hpp"
#include "src/reram/fault_injector.hpp"
#include "src/reram/fault_model.hpp"

namespace ftpim {

struct TrainingCheckpoint;

enum class FtScheme { kOneShot, kProgressive };
enum class GradMode { kStraightThrough, kMasked };
enum class FaultRefresh { kPerEpoch, kPerIteration };

/// Crash-safe checkpointing of a fault-tolerant training run (DESIGN.md §10).
/// With a non-empty `dir`, the trainer saves a TrainingCheckpoint every
/// `every_epochs` global epochs (and always at the end of the run) through
/// the atomic FTCK writer, then applies keep-last-K + keep-best retention.
/// A killed run resumes via FaultTolerantTrainer::resume() and finishes with
/// weights and stats bit-identical to the uninterrupted run.
struct FtCheckpointConfig {
  std::string dir;        ///< empty disables checkpointing
  int every_epochs = 1;   ///< save cadence in global epochs (>= 1)
  int keep_last = 3;      ///< retention window (>= 1)
  bool keep_best = true;  ///< additionally pin the best-metric checkpoint
  /// Retention metric, higher is better (e.g. held-out accuracy). Called
  /// after each save with the current model; must not mutate weights or draw
  /// from shared RNG streams, or the resume bit-identity guarantee breaks.
  /// Default (null): negative training loss of the just-finished epoch.
  std::function<double(Module&)> metric;
};

struct FtTrainConfig {
  TrainConfig base{};           ///< epochs = M_epoch (per stage for progressive)
  FtScheme scheme = FtScheme::kOneShot;
  double target_p_sa = 0.01;    ///< P_sa^T
  /// Ascending candidate rates for the progressive scheme; when empty, the
  /// default ramp {T/8, T/4, T/2, T} is used. Must end at target_p_sa.
  std::vector<double> progressive_levels;
  GradMode grad_mode = GradMode::kStraightThrough;
  /// Default: redraw fault patterns per iteration. Algorithm 1's pseudocode
  /// draws per epoch, which is equivalent at the paper's 160-epoch budget
  /// (160 patterns) but starves compressed reproduction runs of pattern
  /// diversity (3-epoch run = 3 patterns -> unstable, poor generalization).
  /// bench_ablation_refresh compares both.
  FaultRefresh refresh = FaultRefresh::kPerIteration;
  double sa0_fraction = kPaperSa0Fraction;
  InjectorConfig injector{};
  std::uint64_t fault_seed = 4242;
  FtCheckpointConfig checkpoint{};  ///< crash-safe checkpointing (off by default)
};

struct FtTrainStats {
  std::vector<double> stage_rates;          ///< P_sa used at each stage
  std::vector<TrainStats> stage_stats;
  double mean_cell_fault_rate = 0.0;        ///< observed across all injections
};

class FaultTolerantTrainer {
 public:
  /// `model` should be a pretrained network (the paper retrains from a
  /// well-trained model); training from scratch also works.
  FaultTolerantTrainer(Module& model, const Dataset& train_data, FtTrainConfig config);

  /// Runs the configured scheme; the model ends with clean (fault-free)
  /// fault-tolerant weights.
  FtTrainStats run();

  /// Continues a killed run from the checkpoint at `path`: restores the
  /// model, optimizer moments, RNG streams, stats accumulators, and schedule
  /// cursor, then runs the remaining epochs. The final weights and stats are
  /// bit-identical to the uninterrupted run() at any FTPIM_THREADS setting.
  /// Throws CheckpointError on a corrupt checkpoint or when the checkpoint
  /// was produced by a differently configured run (kStateMismatch).
  FtTrainStats resume(const std::string& checkpoint_path);

  /// The stage rate list after defaulting (exposed for tests/logs).
  [[nodiscard]] const std::vector<double>& stage_rates() const noexcept { return stage_rates_; }

 private:
  FtTrainStats run_internal(const TrainingCheckpoint* restore);

  Module& model_;
  const Dataset& train_data_;
  FtTrainConfig config_;
  std::vector<double> stage_rates_;
};

/// Canonical byte encoding of everything in `config` that determines the
/// numerical trajectory of a run (resolved stage rates included; `verbose`
/// and the checkpoint policy excluded). Stored in the CFG0 chunk and compared
/// byte-for-byte on resume.
[[nodiscard]] std::vector<std::uint8_t> encode_ft_config_echo(
    const FtTrainConfig& config, const std::vector<double>& stage_rates);

/// Builds the default progressive ramp for a target rate: {T/8, T/4, T/2, T}.
std::vector<double> default_progressive_ramp(double target_p_sa);

}  // namespace ftpim
