#include "src/core/table_printer.hpp"

#include "src/common/check.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace ftpim {

TablePrinter::TablePrinter(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers)) {
  FTPIM_CHECK(!(headers_.size() < 2), "TablePrinter: need a label header plus >= 1 column");
}

void TablePrinter::add_row(const std::string& label, const std::vector<double>& values) {
  FTPIM_CHECK(!(values.size() != headers_.size() - 1), "TablePrinter::add_row: column count mismatch");
  labels_.push_back(label);
  rows_.push_back(values);
}

std::string TablePrinter::render(int highlight_top, int decimals) const {
  const std::size_t cols = headers_.size() - 1;

  // Which cells get a star: top-k per column.
  std::vector<std::vector<bool>> starred(rows_.size(), std::vector<bool>(cols, false));
  if (highlight_top > 0 && !rows_.empty()) {
    for (std::size_t c = 0; c < cols; ++c) {
      std::vector<std::pair<double, std::size_t>> vals;
      for (std::size_t r = 0; r < rows_.size(); ++r) {
        if (!std::isnan(rows_[r][c])) vals.emplace_back(rows_[r][c], r);
      }
      std::sort(vals.begin(), vals.end(),
                [](const auto& a, const auto& b) { return a.first > b.first; });
      const std::size_t k = std::min<std::size_t>(static_cast<std::size_t>(highlight_top),
                                                  vals.size());
      for (std::size_t i = 0; i < k; ++i) starred[vals[i].second][c] = true;
    }
  }

  auto format_value = [decimals](double v, bool star) {
    if (std::isnan(v)) return std::string("-");
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f%s", decimals, v, star ? "*" : "");
    return std::string(buf);
  };

  // Column widths.
  std::size_t label_w = headers_[0].size();
  for (const auto& l : labels_) label_w = std::max(label_w, l.size());
  std::vector<std::size_t> width(cols);
  for (std::size_t c = 0; c < cols; ++c) {
    width[c] = headers_[c + 1].size();
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      width[c] = std::max(width[c], format_value(rows_[r][c], starred[r][c]).size());
    }
  }

  std::ostringstream out;
  if (!title_.empty()) out << title_ << '\n';
  auto pad = [&out](const std::string& s, std::size_t w) {
    out << s;
    for (std::size_t i = s.size(); i < w; ++i) out << ' ';
  };
  pad(headers_[0], label_w);
  for (std::size_t c = 0; c < cols; ++c) {
    out << "  ";
    pad(headers_[c + 1], width[c]);
  }
  out << '\n';
  std::size_t total = label_w;
  for (std::size_t c = 0; c < cols; ++c) total += 2 + width[c];
  out << std::string(total, '-') << '\n';
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    pad(labels_[r], label_w);
    for (std::size_t c = 0; c < cols; ++c) {
      out << "  ";
      pad(format_value(rows_[r][c], starred[r][c]), width[c]);
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace ftpim
