// Clean and defect-model evaluation.
//
// evaluate_under_defects implements the paper's testing protocol (Algorithm 1
// lines 31-38): for num_of_runs independent devices, apply stuck-at faults to
// the trained weights at the target testing failure rate, measure accuracy,
// restore, and average.
//
// The runs are independent Monte-Carlo trials, so they fan out over
// parallel_for_chunks: each worker evaluates a contiguous block of runs on
// its own Module::clone(), and every run's fault map is seeded from
// derive_seed(seed, run) — a function of the run index alone. Results are
// therefore bit-identical at any FTPIM_THREADS setting, and the source model
// is never touched (weights, buffers, or caches).
#pragma once

#include <cstdint>
#include <vector>

#include "src/data/dataset.hpp"
#include "src/nn/module.hpp"
#include "src/reram/fault_injector.hpp"
#include "src/reram/fault_model.hpp"
#include "src/reram/qinfer/quantized_engine.hpp"

namespace ftpim {

/// Top-1 accuracy (fraction in [0,1]) of `model` on `data` in eval mode.
double evaluate_accuracy(Module& model, const Dataset& data, std::int64_t batch_size = 256);

/// Which datapath the simulated devices run.
enum class EvalEngine {
  kFloat,      ///< faults folded into float weights (fault_injector)
  kQuantized,  ///< int8 conductance-domain engine, faults in the level domain
};

struct DefectEvalConfig {
  int num_runs = 10;            ///< devices to average over (paper: 100)
  double sa0_fraction = kPaperSa0Fraction;
  InjectorConfig injector{};
  std::uint64_t seed = 99;      ///< master seed; device d uses derive_seed(seed, d)
  std::int64_t batch_size = 256;
  EvalEngine engine = EvalEngine::kFloat;
  /// Engine geometry/levels/ADC when engine == kQuantized; `injector` is
  /// ignored on that path (the level domain needs no float read-back).
  qinfer::QuantizedEngineConfig quantized{};
  /// Detection-aware mode (engine == kQuantized only): force ABFT checksum
  /// columns on and, per device run, record whether the injected faults were
  /// flagged by the MVM checksums — detection_rate / mean_flagged_tiles in
  /// the result. Accuracy numbers are unchanged (checksum columns never
  /// alter data outputs).
  bool abft_detection = false;
};

struct DefectEvalResult {
  double mean_acc = 0.0;
  double std_acc = 0.0;
  double min_acc = 1.0;
  double max_acc = 0.0;
  double mean_cell_fault_rate = 0.0;
  std::vector<double> run_accs;
  /// Filled only with config.abft_detection: fraction of device runs whose
  /// faults tripped at least one checksum, and the mean number of distinct
  /// (layer, tile) pairs flagged per run.
  double detection_rate = 0.0;
  double mean_flagged_tiles = 0.0;
};

/// Mean accuracy over `config.num_runs` simulated defective devices at
/// per-cell failure rate `p_sa`. Runs execute in parallel on per-worker
/// model clones; `model` itself is left untouched.
DefectEvalResult evaluate_under_defects(const Module& model, const Dataset& data, double p_sa,
                                        const DefectEvalConfig& config);

/// Known-answer probe set for in-service health checks: fixed synthetic
/// inputs plus the golden outputs a CLEAN model produces on them. The serve
/// layer's HealthMonitor periodically runs these through a live (possibly
/// defective, possibly aged) replica and compares against the golden answers.
struct CanarySet {
  Tensor inputs;  ///< [count, ...sample_shape]
  Tensor golden;  ///< clean-model logits, [count, classes]
  std::vector<std::int64_t> golden_pred;  ///< argmax of each golden row
  [[nodiscard]] std::int64_t count() const noexcept {
    return static_cast<std::int64_t>(golden_pred.size());
  }
};

/// Builds a canary set of `count` samples shaped `sample_shape`, inputs drawn
/// uniform in [-1, 1] from Rng(seed). Golden outputs come from a private
/// clone of `clean_model` (the source is untouched — weights, BN buffers,
/// and caches). Deterministic in (sample_shape, count, seed).
[[nodiscard]] CanarySet make_canary_set(const Module& clean_model, const Shape& sample_shape,
                                        int count, std::uint64_t seed);

/// Scores replica logits against the canary's golden answers; returns how
/// many of the `canary.count()` samples PASS. With max_abs_err >= 0 a sample
/// passes when every logit is within max_abs_err of golden; otherwise
/// (default) it passes when the argmax prediction matches.
[[nodiscard]] int score_canary(const Tensor& logits, const CanarySet& canary,
                               float max_abs_err = -1.0f);

}  // namespace ftpim
