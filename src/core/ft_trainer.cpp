#include "src/core/ft_trainer.hpp"

#include "src/common/check.hpp"
#include "src/common/checkpoint.hpp"

#include <filesystem>
#include <utility>

#include "src/common/logging.hpp"
#include "src/tensor/serialize.hpp"
#include "src/common/timer.hpp"
#include "src/core/train_checkpoint.hpp"

namespace ftpim {
namespace {

constexpr char kAugmentRngStream[] = "dataloader.augment";

/// Cursor/loss-shape validation for a loaded checkpoint. The CRC layer only
/// guarantees the bytes are the ones that were written; this guards against
/// a checkpoint whose cursor is inconsistent with its own loss record.
void validate_cursor(const TrainingCheckpoint& ckpt, std::size_t num_stages,
                     int epochs_per_stage) {
  const auto fail = [](const std::string& detail) {
    throw CheckpointError(CheckpointErrorKind::kFormat, "CURS", detail);
  };
  if (ckpt.next_stage > num_stages) fail("next_stage beyond the stage list");
  if (ckpt.next_stage == num_stages && ckpt.next_epoch != 0) {
    fail("completed run with a nonzero next_epoch");
  }
  if (ckpt.next_stage < num_stages &&
      ckpt.next_epoch >= static_cast<std::uint32_t>(epochs_per_stage)) {
    fail("next_epoch beyond the stage's epoch budget");
  }
  const std::size_t want_stages =
      static_cast<std::size_t>(ckpt.next_stage) + (ckpt.next_epoch > 0 ? 1 : 0);
  if (ckpt.epoch_losses.size() != want_stages) fail("loss record disagrees with the cursor");
  for (std::size_t s = 0; s < ckpt.epoch_losses.size(); ++s) {
    const std::size_t want = (s < static_cast<std::size_t>(ckpt.next_stage))
                                 ? static_cast<std::size_t>(epochs_per_stage)
                                 : static_cast<std::size_t>(ckpt.next_epoch);
    if (ckpt.epoch_losses[s].size() != want) fail("loss record disagrees with the cursor");
  }
  if (ckpt.rate_count < 0) fail("negative fault-rate sample count");
}

}  // namespace

std::vector<double> default_progressive_ramp(double target_p_sa) {
  return {target_p_sa / 8.0, target_p_sa / 4.0, target_p_sa / 2.0, target_p_sa};
}

std::vector<std::uint8_t> encode_ft_config_echo(const FtTrainConfig& config,
                                                const std::vector<double>& stage_rates) {
  ByteWriter out;
  out.u32(1);  // echo layout version
  const TrainConfig& base = config.base;
  out.i64(base.epochs);
  out.i64(base.batch_size);
  out.f32(base.sgd.lr);
  out.f32(base.sgd.momentum);
  out.f32(base.sgd.weight_decay);
  out.f32(base.sgd.grad_clip);
  out.u8(base.cosine_lr ? 1 : 0);
  out.f32(base.label_smoothing);
  out.i64(base.augment.crop_pad);
  out.u8(base.augment.hflip ? 1 : 0);
  out.u8(base.augment.enabled ? 1 : 0);
  out.u64(base.seed);
  // `verbose` and the checkpoint policy are deliberately excluded: neither
  // affects the numerical trajectory, so changing them must not block resume.
  out.u8(static_cast<std::uint8_t>(config.scheme));
  out.f64(config.target_p_sa);
  out.u64(config.progressive_levels.size());
  for (const double level : config.progressive_levels) out.f64(level);
  out.u8(static_cast<std::uint8_t>(config.grad_mode));
  out.u8(static_cast<std::uint8_t>(config.refresh));
  out.f64(config.sa0_fraction);
  out.f32(config.injector.range.g_min);
  out.f32(config.injector.range.g_max);
  out.i64(config.injector.quant_levels);
  out.u8(config.injector.per_tensor_wmax ? 1 : 0);
  out.f32(config.injector.fixed_wmax);
  out.u64(config.fault_seed);
  out.u64(stage_rates.size());
  for (const double rate : stage_rates) out.f64(rate);
  return out.take();
}

FaultTolerantTrainer::FaultTolerantTrainer(Module& model, const Dataset& train_data,
                                           FtTrainConfig config)
    : model_(model), train_data_(train_data), config_(std::move(config)) {
  FTPIM_CHECK(!(config_.target_p_sa < 0.0 || config_.target_p_sa > 1.0), "FaultTolerantTrainer: target_p_sa must be in [0,1]");
  if (config_.scheme == FtScheme::kOneShot) {
    stage_rates_ = {config_.target_p_sa};
  } else {
    stage_rates_ = config_.progressive_levels.empty() ? default_progressive_ramp(config_.target_p_sa)
                                                      : config_.progressive_levels;
    for (std::size_t i = 1; i < stage_rates_.size(); ++i) {
      FTPIM_CHECK(!(stage_rates_[i] < stage_rates_[i - 1]), "FaultTolerantTrainer: progressive levels must ascend");
    }
    FTPIM_CHECK(!(stage_rates_.empty() || stage_rates_.back() != config_.target_p_sa), "FaultTolerantTrainer: progressive levels must end at target_p_sa");
  }
  if (!config_.checkpoint.dir.empty()) {
    FTPIM_CHECK_GE(config_.checkpoint.every_epochs, 1, "FtCheckpointConfig: every_epochs");
    FTPIM_CHECK_GE(config_.checkpoint.keep_last, 1, "FtCheckpointConfig: keep_last");
  }
}

FtTrainStats FaultTolerantTrainer::run() { return run_internal(nullptr); }

FtTrainStats FaultTolerantTrainer::resume(const std::string& checkpoint_path) {
  const TrainingCheckpoint ckpt = load_training_checkpoint(checkpoint_path);
  const std::vector<std::uint8_t> echo = encode_ft_config_echo(config_, stage_rates_);
  if (ckpt.config_echo != echo) {
    throw CheckpointError(CheckpointErrorKind::kStateMismatch, "CFG0",
                          "checkpoint was produced by a differently configured run");
  }
  if (ckpt.stage_rates != stage_rates_) {
    throw CheckpointError(CheckpointErrorKind::kStateMismatch, "CURS",
                          "checkpoint stage rates disagree with this run's schedule");
  }
  validate_cursor(ckpt, stage_rates_.size(), config_.base.epochs);
  if (config_.base.verbose) {
    log_info("FT resume from %s: next stage %u, next epoch %u", checkpoint_path.c_str(),
             ckpt.next_stage, ckpt.next_epoch);
  }
  return run_internal(&ckpt);
}

FtTrainStats FaultTolerantTrainer::run_internal(const TrainingCheckpoint* restore) {
  FtTrainStats stats;
  stats.stage_rates = stage_rates_;
  const int epochs_per_stage = config_.base.epochs;
  const std::size_t num_stages = stage_rates_.size();
  const int total_epochs = epochs_per_stage * static_cast<int>(num_stages);

  double rate_sum = 0.0;
  std::int64_t rate_count = 0;
  std::size_t start_stage = 0;
  int start_epoch = 0;
  // Losses of every fully completed stage, oldest first; a checkpoint's loss
  // record is this plus the in-progress stage's partial list.
  std::vector<std::vector<float>> completed_losses;

  if (restore != nullptr) {
    load_state_dict_into(model_, restore->model);
    rate_sum = restore->rate_sum;
    rate_count = restore->rate_count;
    start_stage = restore->next_stage;
    start_epoch = static_cast<int>(restore->next_epoch);
    for (std::size_t s = 0; s < start_stage; ++s) {
      completed_losses.push_back(restore->epoch_losses[s]);
      stats.stage_stats.push_back(TrainStats{restore->epoch_losses[s]});
    }
  }

  const FtCheckpointConfig& ckpt_config = config_.checkpoint;
  const bool checkpoints_on = !ckpt_config.dir.empty();
  CheckpointRetention retention(checkpoints_on ? ckpt_config.keep_last : 1,
                                checkpoints_on && ckpt_config.keep_best);
  std::vector<std::uint8_t> config_echo;
  if (checkpoints_on) {
    config_echo = encode_ft_config_echo(config_, stage_rates_);
    std::filesystem::create_directories(ckpt_config.dir);
  }

  // One session for the whole run: the clean-weight shadows and hit-mask
  // buffers are allocated once and reused by every iteration's
  // inject/restore cycle instead of rebuilding a fresh guard snapshot per
  // before_forward hook.
  FaultInjectionSession session(model_);

  for (std::size_t stage = start_stage; stage < num_stages; ++stage) {
    const double p_sa = stage_rates_[stage];
    const StuckAtFaultModel fault_model(p_sa, config_.sa0_fraction);
    TrainConfig stage_config = config_.base;
    // Decorrelate batch order across stages while staying deterministic.
    stage_config.seed = derive_seed(config_.base.seed, stage);
    Trainer trainer(model_, train_data_, stage_config);

    const std::uint64_t stage_fault_seed = derive_seed(config_.fault_seed, stage);

    TrainHooks hooks;
    hooks.before_forward = [this, &session, fault_model, stage_fault_seed](int epoch,
                                                                           std::int64_t iter) {
      // kPerEpoch: same RNG seed for every iteration of an epoch -> identical
      // fault positions, matching Algorithm 1's per-epoch Apply_Fault.
      const std::uint64_t draw =
          config_.refresh == FaultRefresh::kPerEpoch
              ? derive_seed(stage_fault_seed, static_cast<std::uint64_t>(epoch))
              : derive_seed(stage_fault_seed,
                            (static_cast<std::uint64_t>(epoch) << 32) ^
                                static_cast<std::uint64_t>(iter));
      Rng rng(draw);
      session.inject(fault_model, config_.injector, rng);
    };
    hooks.after_backward = [this, &session, &rate_sum, &rate_count](int, std::int64_t) {
      if (!session.injected()) return;
      if (config_.grad_mode == GradMode::kMasked) {
        const auto& params = session.faulted_params();
        const auto& masks = session.hit_masks();
        for (std::size_t k = 0; k < params.size(); ++k) {
          float* g = params[k]->grad.data();
          const float* hit = masks[k].data();
          for (std::int64_t i = 0; i < params[k]->grad.numel(); ++i) {
            if (hit[i] != 0.0f) g[i] = 0.0f;
          }
        }
      }
      rate_sum += session.stats().cell_fault_rate();
      ++rate_count;
      session.restore();  // optimizer step must see clean weights
    };
    trainer.set_hooks(hooks);

    if (config_.base.verbose) {
      log_info("FT stage %zu/%zu: P_sa=%.4f, %d epochs", stage + 1, num_stages, p_sa,
               epochs_per_stage);
    }

    std::vector<float> stage_losses;
    int first_epoch = 0;
    if (restore != nullptr && stage == start_stage && start_epoch > 0) {
      // Mid-stage resume: this Trainer (and its optimizer and loader) stands
      // in for the one the killed run built, so its cross-epoch mutable
      // state — momentum buffers and the augmentation RNG — must be restored.
      // At a stage boundary all three are built fresh, exactly like here.
      trainer.optimizer().load_state(restore->optimizer);
      const RngState* augment_state = nullptr;
      for (const auto& [name, state] : restore->rng_streams) {
        if (name == kAugmentRngStream) augment_state = &state;
      }
      if (augment_state == nullptr) {
        throw CheckpointError(CheckpointErrorKind::kStateMismatch, "RNGS",
                              "mid-stage checkpoint lacks the '" +
                                  std::string(kAugmentRngStream) + "' stream");
      }
      trainer.loader().set_augment_rng_state(*augment_state);
      stage_losses = restore->epoch_losses[stage];
      first_epoch = start_epoch;
    }

    Timer timer;
    for (int e = first_epoch; e < epochs_per_stage; ++e) {
      const int global_epoch = static_cast<int>(stage) * epochs_per_stage + e;
      const float loss = trainer.run_epoch(global_epoch, total_epochs);
      stage_losses.push_back(loss);
      if (config_.base.verbose) {
        log_info("epoch %d/%d loss=%.4f lr=%.4f (%.1fs)", global_epoch + 1, total_epochs, loss,
                 trainer.optimizer().lr(), timer.seconds());
      }

      const int completed = global_epoch + 1;
      if (checkpoints_on &&
          (completed % ckpt_config.every_epochs == 0 || completed == total_epochs)) {
        TrainingCheckpoint ckpt;
        ckpt.config_echo = config_echo;
        const bool stage_done = e + 1 == epochs_per_stage;
        ckpt.next_stage = static_cast<std::uint32_t>(stage) + (stage_done ? 1u : 0u);
        ckpt.next_epoch = stage_done ? 0u : static_cast<std::uint32_t>(e + 1);
        ckpt.rate_sum = rate_sum;
        ckpt.rate_count = rate_count;
        ckpt.stage_rates = stage_rates_;
        ckpt.epoch_losses = completed_losses;
        ckpt.epoch_losses.push_back(stage_losses);
        ckpt.model = state_dict_of(model_);
        if (!stage_done) {
          // A stage boundary builds a fresh optimizer and loader, so there is
          // nothing to carry; mid-stage, both must survive the crash.
          ckpt.optimizer = trainer.optimizer().state_dict();
          ckpt.rng_streams.emplace_back(kAugmentRngStream, trainer.loader().augment_rng_state());
        }
        const std::string path =
            (std::filesystem::path(ckpt_config.dir) / checkpoint_filename(completed)).string();
        save_training_checkpoint(ckpt, path);
        const double metric = ckpt_config.metric ? ckpt_config.metric(model_)
                                                 : -static_cast<double>(loss);
        retention.admit(path, metric);
        if (config_.base.verbose) {
          log_info("checkpoint saved: %s (metric=%.4f)", path.c_str(), metric);
        }
      }
    }

    completed_losses.push_back(stage_losses);
    stats.stage_stats.push_back(TrainStats{std::move(stage_losses)});
  }

  stats.mean_cell_fault_rate = rate_count > 0 ? rate_sum / static_cast<double>(rate_count) : 0.0;
  return stats;
}

}  // namespace ftpim
