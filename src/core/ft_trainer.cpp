#include "src/core/ft_trainer.hpp"

#include "src/common/check.hpp"

#include <stdexcept>

#include "src/common/logging.hpp"

namespace ftpim {

std::vector<double> default_progressive_ramp(double target_p_sa) {
  return {target_p_sa / 8.0, target_p_sa / 4.0, target_p_sa / 2.0, target_p_sa};
}

FaultTolerantTrainer::FaultTolerantTrainer(Module& model, const Dataset& train_data,
                                           FtTrainConfig config)
    : model_(model), train_data_(train_data), config_(std::move(config)) {
  FTPIM_CHECK(!(config_.target_p_sa < 0.0 || config_.target_p_sa > 1.0), "FaultTolerantTrainer: target_p_sa must be in [0,1]");
  if (config_.scheme == FtScheme::kOneShot) {
    stage_rates_ = {config_.target_p_sa};
  } else {
    stage_rates_ = config_.progressive_levels.empty() ? default_progressive_ramp(config_.target_p_sa)
                                                      : config_.progressive_levels;
    for (std::size_t i = 1; i < stage_rates_.size(); ++i) {
      FTPIM_CHECK(!(stage_rates_[i] < stage_rates_[i - 1]), "FaultTolerantTrainer: progressive levels must ascend");
    }
    FTPIM_CHECK(!(stage_rates_.empty() || stage_rates_.back() != config_.target_p_sa), "FaultTolerantTrainer: progressive levels must end at target_p_sa");
  }
}

FtTrainStats FaultTolerantTrainer::run() {
  FtTrainStats stats;
  stats.stage_rates = stage_rates_;
  const int total_epochs = config_.base.epochs * static_cast<int>(stage_rates_.size());

  double rate_sum = 0.0;
  std::int64_t rate_count = 0;

  // One session for the whole run: the clean-weight shadows and hit-mask
  // buffers are allocated once and reused by every iteration's
  // inject/restore cycle instead of rebuilding a fresh guard snapshot per
  // before_forward hook.
  FaultInjectionSession session(model_);

  for (std::size_t stage = 0; stage < stage_rates_.size(); ++stage) {
    const double p_sa = stage_rates_[stage];
    const StuckAtFaultModel fault_model(p_sa, config_.sa0_fraction);
    TrainConfig stage_config = config_.base;
    // Decorrelate batch order across stages while staying deterministic.
    stage_config.seed = derive_seed(config_.base.seed, stage);
    Trainer trainer(model_, train_data_, stage_config);

    const std::uint64_t stage_fault_seed = derive_seed(config_.fault_seed, stage);

    TrainHooks hooks;
    hooks.before_forward = [this, &session, fault_model, stage_fault_seed](int epoch,
                                                                           std::int64_t iter) {
      // kPerEpoch: same RNG seed for every iteration of an epoch -> identical
      // fault positions, matching Algorithm 1's per-epoch Apply_Fault.
      const std::uint64_t draw =
          config_.refresh == FaultRefresh::kPerEpoch
              ? derive_seed(stage_fault_seed, static_cast<std::uint64_t>(epoch))
              : derive_seed(stage_fault_seed,
                            (static_cast<std::uint64_t>(epoch) << 32) ^
                                static_cast<std::uint64_t>(iter));
      Rng rng(draw);
      session.inject(fault_model, config_.injector, rng);
    };
    hooks.after_backward = [this, &session, &rate_sum, &rate_count](int, std::int64_t) {
      if (!session.injected()) return;
      if (config_.grad_mode == GradMode::kMasked) {
        const auto& params = session.faulted_params();
        const auto& masks = session.hit_masks();
        for (std::size_t k = 0; k < params.size(); ++k) {
          float* g = params[k]->grad.data();
          const float* hit = masks[k].data();
          for (std::int64_t i = 0; i < params[k]->grad.numel(); ++i) {
            if (hit[i] != 0.0f) g[i] = 0.0f;
          }
        }
      }
      rate_sum += session.stats().cell_fault_rate();
      ++rate_count;
      session.restore();  // optimizer step must see clean weights
    };
    trainer.set_hooks(hooks);

    if (config_.base.verbose) {
      log_info("FT stage %zu/%zu: P_sa=%.4f, %d epochs", stage + 1, stage_rates_.size(), p_sa,
               config_.base.epochs);
    }
    stats.stage_stats.push_back(
        trainer.run(static_cast<int>(stage) * config_.base.epochs, total_epochs));
  }
  stats.mean_cell_fault_rate = rate_count > 0 ? rate_sum / static_cast<double>(rate_count) : 0.0;
  return stats;
}

}  // namespace ftpim
