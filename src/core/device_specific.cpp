#include "src/core/device_specific.hpp"

#include "src/core/evaluator.hpp"

namespace ftpim {
namespace {

std::uint64_t device_stream(std::uint64_t master, std::uint64_t device_index) {
  // Must match evaluate_on_device so retraining targets the deployed map.
  return derive_seed(master, device_index + 0x0d0e);
}

}  // namespace

TrainStats device_specific_retrain(Module& model, const Dataset& train_data,
                                   const DeviceSpecificConfig& config) {
  const StuckAtFaultModel fault_model(config.p_sa, config.sa0_fraction);
  const std::uint64_t stream = device_stream(config.defect_master_seed, config.device_index);

  Trainer trainer(model, train_data, config.base);
  FaultInjectionSession session(model);  // snapshot buffers reused every iteration
  TrainHooks hooks;
  hooks.before_forward = [&session, fault_model, stream,
                          injector = config.injector](int, std::int64_t) {
    // Same seed every iteration: the device's defect map is FIXED — this is
    // what makes the method device-specific.
    Rng rng(stream);
    session.inject(fault_model, injector, rng);
  };
  hooks.after_backward = [&session](int, std::int64_t) {
    if (!session.injected()) return;
    // The map is known, so the retraining pins stuck weights: no gradient
    // flows into positions the device cannot realize.
    const auto& params = session.faulted_params();
    const auto& masks = session.hit_masks();
    for (std::size_t k = 0; k < params.size(); ++k) {
      float* g = params[k]->grad.data();
      const float* hit = masks[k].data();
      for (std::int64_t i = 0; i < params[k]->grad.numel(); ++i) {
        if (hit[i] != 0.0f) g[i] = 0.0f;
      }
    }
    session.restore();
  };
  trainer.set_hooks(hooks);
  return trainer.run();
}

double evaluate_on_device(Module& model, const Dataset& data, double p_sa,
                          double sa0_fraction, const InjectorConfig& injector,
                          std::uint64_t defect_master_seed, std::uint64_t device_index) {
  const StuckAtFaultModel fault_model(p_sa, sa0_fraction);
  Rng rng(device_stream(defect_master_seed, device_index));
  const WeightFaultGuard guard(model, fault_model, injector, rng);
  return evaluate_accuracy(model, data);
}

}  // namespace ftpim
