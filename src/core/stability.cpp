#include "src/core/stability.hpp"

#include "src/common/check.hpp"

#include <algorithm>

namespace ftpim {

double stability_score(const StabilityInputs& inputs, double denominator_floor) {
  FTPIM_CHECK(!(denominator_floor <= 0.0), "stability_score: denominator_floor must be positive");
  FTPIM_CHECK(!(inputs.acc_pretrain < 0.0 || inputs.acc_retrain < 0.0 || inputs.acc_defect < 0.0), "stability_score: accuracies must be non-negative");
  const double denom = std::max(inputs.acc_pretrain - inputs.acc_defect, denominator_floor);
  return inputs.acc_retrain / denom;
}

}  // namespace ftpim
