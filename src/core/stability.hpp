// Stability Score (SS) — the paper's robustness/accuracy trade-off metric:
//
//   SS(P_sa) = Acc_retrain / (Acc_pretrain - Acc_defect)
//
// Higher is better: a large SS means little degradation from the ideal
// pretrained accuracy under defects while keeping a strong retrained
// accuracy. The denominator is clamped below at `denominator_floor` (0.5
// accuracy points by default) because a fault-tolerant model can match or
// exceed the pretrained accuracy under small fault rates, driving the raw
// denominator to zero or negative.
#pragma once

namespace ftpim {

struct StabilityInputs {
  double acc_pretrain = 0.0;  ///< ideal accuracy of the original model
  double acc_retrain = 0.0;   ///< ideal accuracy after FT training (scenario 2)
  double acc_defect = 0.0;    ///< mean accuracy under defects (scenario 3)
};

/// All accuracies must share one scale (fractions or percent); the score is
/// scale-invariant. `denominator_floor` is in the same scale (0.005 for
/// fractions == 0.5 accuracy points).
double stability_score(const StabilityInputs& inputs, double denominator_floor = 0.005);

}  // namespace ftpim
