#include "src/core/experiment.hpp"


#include "src/common/logging.hpp"
#include "src/data/cifar_loader.hpp"
#include "src/data/synthetic.hpp"
#include "src/models/resnet.hpp"

namespace ftpim {

std::vector<double> paper_test_rates() {
  return {0, 0.001, 0.0015, 0.002, 0.003, 0.005, 0.01, 0.02, 0.03, 0.05, 0.075, 0.1, 0.15, 0.2};
}

std::vector<double> paper_train_rates() { return {0.005, 0.01, 0.02, 0.05, 0.1, 0.15, 0.2}; }

Experiment::Experiment(ExperimentConfig config) : config_(std::move(config)) {
  if (config_.classes != 10 && config_.classes != 100) {
    // Any class count works for the library; the harness mirrors the paper.
    log_warn("Experiment: nonstandard class count %lld",
             static_cast<long long>(config_.classes));
  }
  const std::string cifar10_dir = env_string("FTPIM_CIFAR10_DIR", "data/cifar-10-batches-bin");
  const std::string cifar100_dir = env_string("FTPIM_CIFAR100_DIR", "data/cifar-100-binary");
  if (config_.classes == 10 && cifar10_available(cifar10_dir)) {
    train_ = load_cifar10(cifar10_dir, /*train=*/true, config_.scale.train_size);
    test_ = load_cifar10(cifar10_dir, /*train=*/false, config_.scale.test_size);
    dataset_name_ = "CIFAR-10 (real)";
  } else if (config_.classes == 100 && cifar100_available(cifar100_dir)) {
    train_ = load_cifar100(cifar100_dir, /*train=*/true, config_.scale.train_size);
    test_ = load_cifar100(cifar100_dir, /*train=*/false, config_.scale.test_size);
    dataset_name_ = "CIFAR-100 (real)";
  } else {
    SynthVisionConfig sv;
    sv.num_classes = config_.classes;
    sv.image_size = config_.scale.image_size;
    sv.seed = derive_seed(config_.seed, 0x5e);
    sv.samples = config_.scale.train_size;
    train_ = make_synthvision(sv, /*sample_stream=*/1);
    sv.samples = config_.scale.test_size;
    test_ = make_synthvision(sv, /*sample_stream=*/2);
    dataset_name_ = "SynthVision-" + std::to_string(config_.classes) + " (substitute)";
  }
}

std::unique_ptr<Sequential> Experiment::fresh_model(std::uint64_t seed_offset) const {
  return make_resnet(ResNetConfig{.depth = config_.resnet_depth,
                                  .classes = config_.classes,
                                  .base_width = config_.scale.resnet_width,
                                  .seed = derive_seed(config_.seed, 0x30de1 + seed_offset)});
}

std::unique_ptr<Sequential> Experiment::clone_model(const Sequential& source) const {
  // Structural deep copy — carries params AND buffers (BN running stats),
  // which the old state-dict round trip through fresh_model() also did, but
  // without re-running weight init just to overwrite it.
  return std::make_unique<Sequential>(source);
}

TrainConfig Experiment::base_train_config() const {
  TrainConfig tc;
  tc.epochs = config_.scale.epochs;
  tc.batch_size = config_.scale.batch_size;
  tc.sgd = SgdConfig{.lr = 0.1f, .momentum = 0.9f, .weight_decay = 5e-4f, .grad_clip = 5.0f};
  tc.cosine_lr = true;
  tc.augment = AugmentConfig{
      .crop_pad = config_.scale.image_size >= 32 ? 4 : 2, .hflip = true, .enabled = true};
  tc.seed = derive_seed(config_.seed, 0x7a);
  tc.verbose = config_.verbose;
  return tc;
}

double Experiment::pretrain(Sequential& model) const {
  Trainer trainer(model, *train_, base_train_config());
  trainer.run();
  return evaluate_accuracy(model, *test_);
}

std::unique_ptr<Sequential> Experiment::ft_variant(Sequential& pretrained, FtScheme scheme,
                                                   double target_p_sa) const {
  auto model = clone_model(pretrained);
  FtTrainConfig ft;
  ft.base = base_train_config();
  // Retraining from a converged model at compressed epoch budgets needs a
  // gentler LR than the paper's 160-epoch recipe or the pretrained solution
  // is destroyed before the cosine decay settles.
  if (config_.scale.epochs < 40) ft.base.sgd.lr = 0.05f;
  if (scheme == FtScheme::kProgressive) {
    // Keep total epoch budget comparable across schemes: split M_epoch over
    // the ramp stages (>=1 epoch each).
    const int stages = static_cast<int>(default_progressive_ramp(target_p_sa).size());
    ft.base.epochs = std::max(1, ft.base.epochs / stages);
  }
  ft.scheme = scheme;
  ft.target_p_sa = target_p_sa;
  ft.fault_seed = derive_seed(config_.seed, 0xfa);
  FaultTolerantTrainer trainer(*model, *train_, ft);
  trainer.run();
  return model;
}

DefectEvalConfig Experiment::defect_eval_config() const {
  DefectEvalConfig cfg;
  cfg.num_runs = config_.scale.defect_runs;
  cfg.seed = derive_seed(config_.seed, 0xde);
  return cfg;
}

std::vector<double> Experiment::sweep_rates(Sequential& model,
                                            const std::vector<double>& rates) const {
  const DefectEvalConfig cfg = defect_eval_config();
  std::vector<double> accs;
  accs.reserve(rates.size());
  for (const double rate : rates) {
    if (rate <= 0.0) {
      accs.push_back(evaluate_accuracy(model, *test_));
    } else {
      accs.push_back(evaluate_under_defects(model, *test_, rate, cfg).mean_acc);
    }
  }
  return accs;
}

}  // namespace ftpim
