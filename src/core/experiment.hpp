// Experiment harness shared by the bench binaries and examples.
//
// Wires together: dataset selection (real CIFAR when the binary files are on
// disk, SynthVision otherwise — see DESIGN.md §3), model construction at the
// active RunScale, baseline pretraining, FT-variant training, and
// failure-rate sweeps. Each bench binary composes these pieces into one
// paper table/figure.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/common/config.hpp"
#include "src/core/evaluator.hpp"
#include "src/core/ft_trainer.hpp"
#include "src/core/trainer.hpp"
#include "src/data/dataset.hpp"
#include "src/nn/sequential.hpp"

namespace ftpim {

struct ExperimentConfig {
  std::int64_t classes = 10;   ///< 10 => CIFAR-10/ResNet-20 row; 100 => CIFAR-100/ResNet-32
  int resnet_depth = 20;
  RunScale scale{};            ///< from run_scale() typically
  std::uint64_t seed = 2024;
  bool verbose = false;
};

class Experiment {
 public:
  explicit Experiment(ExperimentConfig config);

  [[nodiscard]] const Dataset& train_data() const noexcept { return *train_; }
  [[nodiscard]] const Dataset& test_data() const noexcept { return *test_; }
  [[nodiscard]] const ExperimentConfig& config() const noexcept { return config_; }
  [[nodiscard]] const std::string& dataset_name() const noexcept { return dataset_name_; }

  /// Fresh randomly-initialized model of the configured architecture.
  [[nodiscard]] std::unique_ptr<Sequential> fresh_model(std::uint64_t seed_offset = 0) const;

  /// Deep copy via the Module::clone() protocol (fresh disjoint storage).
  [[nodiscard]] std::unique_ptr<Sequential> clone_model(const Sequential& source) const;

  /// Training recipe at the active scale (cosine LR from 0.1, augmentation).
  [[nodiscard]] TrainConfig base_train_config() const;

  /// Trains `model` from its current weights; returns clean test accuracy.
  double pretrain(Sequential& model) const;

  /// FT-trains a copy of `pretrained`; returns the fault-tolerant model.
  [[nodiscard]] std::unique_ptr<Sequential> ft_variant(Sequential& pretrained, FtScheme scheme,
                                                       double target_p_sa) const;

  /// Clean accuracy followed by Acc_defect at each rate (fractions in [0,1]).
  /// rates[i] == 0 short-circuits to the clean accuracy.
  [[nodiscard]] std::vector<double> sweep_rates(Sequential& model,
                                                const std::vector<double>& rates) const;

  [[nodiscard]] DefectEvalConfig defect_eval_config() const;

 private:
  ExperimentConfig config_;
  std::unique_ptr<Dataset> train_;
  std::unique_ptr<Dataset> test_;
  std::string dataset_name_;
};

/// The paper's target *testing* failure-rate grid (Table I columns).
std::vector<double> paper_test_rates();

/// The paper's target *training* failure rates (Table I rows).
std::vector<double> paper_train_rates();

}  // namespace ftpim
