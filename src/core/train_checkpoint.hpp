// Durable training checkpoints: full state capture for exact resume.
//
// A TrainingCheckpoint freezes everything the fault-tolerant training loop
// needs to continue a killed run as if it had never stopped (DESIGN.md §10):
//
//   CFG0  canonical echo of the FtTrainConfig + resolved stage rates — resume
//         refuses (kStateMismatch) when the resuming run was configured
//         differently, since silently diverging would break the bit-identical
//         guarantee;
//   CURS  schedule cursor (next stage, next epoch-within-stage), the
//         mean-fault-rate accumulators, stage rates, and per-epoch losses so
//         far (FtTrainStats is reconstructed exactly);
//   MODL  model weights + buffers (BN running stats) as a state dict;
//   OPTM  optimizer moment buffers (empty at stage boundaries, where the
//         progressive scheme builds a fresh optimizer anyway);
//   RNGS  the long-lived RNG streams (the DataLoader's augmentation Rng) —
//         every other stochastic input (shuffle order, fault draws, LR) is a
//         pure function of the cursor and the seeds in CFG0;
//   DMAP  (optional) the active per-device DefectMap, for device-specific
//         flows that train against a fixed physical defect pattern;
//   AGEM  (optional) AgingConfig, for serving-lifetime snapshots.
//
// Files are written through CheckpointWriter/AtomicFileWriter, so a crash at
// any byte leaves either the previous checkpoint or a complete new one.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/rng.hpp"
#include "src/tensor/serialize.hpp"
#include "src/reram/aging.hpp"
#include "src/reram/defect_map.hpp"

namespace ftpim {

struct TrainingCheckpoint {
  /// Canonical byte encoding of the run configuration (see
  /// encode_ft_config_echo); resume compares it byte-for-byte.
  std::vector<std::uint8_t> config_echo;

  /// Schedule cursor: the NEXT epoch to run is epoch `next_epoch` of stage
  /// `next_stage`. (num_stages, 0) marks a completed run.
  std::uint32_t next_stage = 0;
  std::uint32_t next_epoch = 0;

  /// Mean-cell-fault-rate accumulators (FtTrainStats::mean_cell_fault_rate
  /// is rate_sum / rate_count at the end of the run).
  double rate_sum = 0.0;
  std::int64_t rate_count = 0;

  std::vector<double> stage_rates;
  /// Per-stage epoch losses recorded so far: full stages carry base.epochs
  /// entries, the in-progress stage `next_epoch` entries.
  std::vector<std::vector<float>> epoch_losses;

  StateDict model;
  /// Optimizer moments ("velocity/..." for SGD); empty when the cursor sits
  /// at a stage boundary (the next stage constructs a fresh optimizer).
  StateDict optimizer;
  /// Named long-lived RNG streams, e.g. {"dataloader.augment", state}.
  std::vector<std::pair<std::string, RngState>> rng_streams;

  std::optional<DefectMap> defect_map;
  std::optional<AgingConfig> aging;
};

/// Writes `ckpt` to `path` atomically (temp + fsync + rename). Throws
/// CheckpointError(kIo) on IO failure.
void save_training_checkpoint(const TrainingCheckpoint& ckpt, const std::string& path);

/// Loads and fully validates a checkpoint. Throws CheckpointError — kMissing,
/// kBadMagic, kVersionSkew, kTruncated, kChecksumMismatch (naming the chunk),
/// kMissingChunk, or kFormat — on any defect; never returns garbage.
[[nodiscard]] TrainingCheckpoint load_training_checkpoint(const std::string& path);

/// Canonical filename for the checkpoint saved after `completed_epochs`
/// global epochs: "ckpt-000012.ftck".
[[nodiscard]] std::string checkpoint_filename(int completed_epochs);

/// Path of the newest checkpoint ("ckpt-*.ftck" with the highest epoch
/// number) in `dir`, or "" when none exists. Deterministic: decided by the
/// parsed epoch number, not directory iteration order.
[[nodiscard]] std::string latest_checkpoint(const std::string& dir);

/// Keep-last-K + keep-best retention over a directory of checkpoints.
///
/// admit() registers a freshly written checkpoint with its metric (higher is
/// better, e.g. validation accuracy or negative loss) and deletes the oldest
/// checkpoints beyond the window — except the best-metric one, which is
/// pinned until a better one appears (ties keep the earlier checkpoint).
class CheckpointRetention {
 public:
  /// keep_last >= 1. With keep_best, at most keep_last + 1 files remain.
  CheckpointRetention(int keep_last, bool keep_best);

  /// Registers `path` (newest checkpoint) and applies the policy.
  void admit(const std::string& path, double metric);

  /// Best-metric checkpoint admitted so far ("" before the first admit, or
  /// when keep_best is off).
  [[nodiscard]] const std::string& best_path() const noexcept { return best_path_; }

 private:
  int keep_last_;
  bool keep_best_;
  std::vector<std::string> recent_;  ///< oldest first
  std::string best_path_;
  double best_metric_ = 0.0;
};

}  // namespace ftpim
