#include "src/core/train_checkpoint.hpp"

#include <algorithm>
#include <filesystem>

#include "src/common/check.hpp"
#include "src/common/checkpoint.hpp"
#include "src/common/strformat.hpp"

namespace ftpim {
namespace {

constexpr char kChunkConfig[] = "CFG0";
constexpr char kChunkCursor[] = "CURS";
constexpr char kChunkModel[] = "MODL";
constexpr char kChunkOptimizer[] = "OPTM";
constexpr char kChunkRng[] = "RNGS";
constexpr char kChunkDefectMap[] = "DMAP";
constexpr char kChunkAging[] = "AGEM";

constexpr std::uint64_t kMaxStages = 1u << 16;
constexpr std::uint64_t kMaxEpochsPerStage = 1u << 24;
constexpr std::uint64_t kMaxRngStreams = 1u << 10;

}  // namespace

void save_training_checkpoint(const TrainingCheckpoint& ckpt, const std::string& path) {
  CheckpointWriter writer;
  writer.add_chunk(kChunkConfig, ckpt.config_echo);

  ByteWriter cursor;
  cursor.u32(ckpt.next_stage);
  cursor.u32(ckpt.next_epoch);
  cursor.f64(ckpt.rate_sum);
  cursor.i64(ckpt.rate_count);
  cursor.u64(ckpt.stage_rates.size());
  for (const double r : ckpt.stage_rates) cursor.f64(r);
  cursor.u64(ckpt.epoch_losses.size());
  for (const std::vector<float>& stage : ckpt.epoch_losses) {
    cursor.u64(stage.size());
    for (const float loss : stage) cursor.f32(loss);
  }
  writer.add_chunk(kChunkCursor, cursor.take());

  writer.add_chunk(kChunkModel, encode_state_dict(ckpt.model));
  writer.add_chunk(kChunkOptimizer, encode_state_dict(ckpt.optimizer));

  ByteWriter rng;
  rng.u64(ckpt.rng_streams.size());
  for (const auto& [name, state] : ckpt.rng_streams) {
    rng.str(name);
    for (const std::uint64_t word : state.words) rng.u64(word);
    rng.u8(state.has_cached ? 1 : 0);
    rng.f32(state.cached);
  }
  writer.add_chunk(kChunkRng, rng.take());

  if (ckpt.defect_map.has_value()) {
    ByteWriter dmap;
    ckpt.defect_map->encode(dmap);
    writer.add_chunk(kChunkDefectMap, dmap.take());
  }
  if (ckpt.aging.has_value()) {
    ByteWriter aging;
    ckpt.aging->encode(aging);
    writer.add_chunk(kChunkAging, aging.take());
  }

  writer.write(path);
}

TrainingCheckpoint load_training_checkpoint(const std::string& path) {
  const CheckpointReader reader(path);
  TrainingCheckpoint ckpt;

  ckpt.config_echo = reader.chunk(kChunkConfig);

  ByteReader cursor = reader.reader(kChunkCursor);
  ckpt.next_stage = cursor.u32();
  ckpt.next_epoch = cursor.u32();
  ckpt.rate_sum = cursor.f64();
  ckpt.rate_count = cursor.i64();
  const std::uint64_t num_rates = cursor.u64();
  if (num_rates > kMaxStages) {
    throw CheckpointError(CheckpointErrorKind::kFormat, kChunkCursor,
                          "declares " + std::to_string(num_rates) + " stage rates");
  }
  ckpt.stage_rates.resize(num_rates);
  for (double& r : ckpt.stage_rates) r = cursor.f64();
  const std::uint64_t num_loss_stages = cursor.u64();
  if (num_loss_stages > kMaxStages) {
    throw CheckpointError(CheckpointErrorKind::kFormat, kChunkCursor,
                          "declares " + std::to_string(num_loss_stages) + " loss stages");
  }
  ckpt.epoch_losses.resize(num_loss_stages);
  for (std::vector<float>& stage : ckpt.epoch_losses) {
    const std::uint64_t n = cursor.u64();
    if (n > kMaxEpochsPerStage) {
      throw CheckpointError(CheckpointErrorKind::kFormat, kChunkCursor,
                            "declares " + std::to_string(n) + " epochs in one stage");
    }
    stage.resize(n);
    for (float& loss : stage) loss = cursor.f32();
  }
  cursor.expect_done();

  ByteReader model = reader.reader(kChunkModel);
  ckpt.model = decode_state_dict(model);
  model.expect_done();

  ByteReader optimizer = reader.reader(kChunkOptimizer);
  ckpt.optimizer = decode_state_dict(optimizer);
  optimizer.expect_done();

  ByteReader rng = reader.reader(kChunkRng);
  const std::uint64_t num_streams = rng.u64();
  if (num_streams > kMaxRngStreams) {
    throw CheckpointError(CheckpointErrorKind::kFormat, kChunkRng,
                          "declares " + std::to_string(num_streams) + " rng streams");
  }
  for (std::uint64_t i = 0; i < num_streams; ++i) {
    std::string name = rng.str();
    RngState state;
    for (std::uint64_t& word : state.words) word = rng.u64();
    state.has_cached = rng.u8() != 0;
    state.cached = rng.f32();
    ckpt.rng_streams.emplace_back(std::move(name), state);
  }
  rng.expect_done();

  if (reader.has_chunk(kChunkDefectMap)) {
    ByteReader dmap = reader.reader(kChunkDefectMap);
    ckpt.defect_map = DefectMap::decode(dmap);
    dmap.expect_done();
  }
  if (reader.has_chunk(kChunkAging)) {
    ByteReader aging = reader.reader(kChunkAging);
    ckpt.aging = AgingConfig::decode(aging);
    aging.expect_done();
  }
  return ckpt;
}

std::string checkpoint_filename(int completed_epochs) {
  FTPIM_CHECK_GE(completed_epochs, 0, "checkpoint_filename: completed_epochs");
  return detail::format_msg("ckpt-%06d.ftck", completed_epochs);
}

std::string latest_checkpoint(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return "";
  long best_epoch = -1;
  std::string best;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() != 16 || name.rfind("ckpt-", 0) != 0 ||
        name.compare(11, 5, ".ftck") != 0) {
      continue;
    }
    long epoch = 0;
    bool numeric = true;
    for (int i = 5; i < 11; ++i) {
      const char c = name[static_cast<std::size_t>(i)];
      if (c < '0' || c > '9') {
        numeric = false;
        break;
      }
      epoch = epoch * 10 + (c - '0');
    }
    // Ties are impossible (names are unique in a directory); > keeps the
    // scan order-independent anyway.
    if (numeric && epoch > best_epoch) {
      best_epoch = epoch;
      best = entry.path().string();
    }
  }
  return best;
}

CheckpointRetention::CheckpointRetention(int keep_last, bool keep_best)
    : keep_last_(keep_last), keep_best_(keep_best) {
  FTPIM_CHECK_GE(keep_last, 1, "CheckpointRetention: keep_last");
}

void CheckpointRetention::admit(const std::string& path, double metric) {
  recent_.push_back(path);
  if (keep_best_ && (best_path_.empty() || metric > best_metric_)) {
    // The dethroned best is deleted unless it is still inside the
    // keep-last window.
    const std::string dethroned = best_path_;
    best_path_ = path;
    best_metric_ = metric;
    if (!dethroned.empty() &&
        std::find(recent_.begin(), recent_.end(), dethroned) == recent_.end()) {
      std::error_code ec;
      std::filesystem::remove(dethroned, ec);
    }
  }
  while (recent_.size() > static_cast<std::size_t>(keep_last_)) {
    const std::string victim = recent_.front();
    recent_.erase(recent_.begin());
    if (victim == best_path_) continue;  // pinned until dethroned
    std::error_code ec;
    std::filesystem::remove(victim, ec);
  }
}

}  // namespace ftpim
