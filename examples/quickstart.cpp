// Quickstart: train a small CNN, watch it break under stuck-at faults, then
// fix it with one-shot stochastic fault-tolerant training — checkpointed, so
// a kill at any point resumes instead of restarting.
//
//   $ ./quickstart
//
// Walks the full public API surface: dataset -> model -> Trainer ->
// evaluate_under_defects -> FaultTolerantTrainer (+ crash-safe checkpoints
// and exact resume) -> StabilityScore.
#include <cstdio>
#include <filesystem>

#include "src/common/config.hpp"
#include "src/tensor/serialize.hpp"
#include "src/core/evaluator.hpp"
#include "src/core/ft_trainer.hpp"
#include "src/core/stability.hpp"
#include "src/core/train_checkpoint.hpp"
#include "src/core/trainer.hpp"
#include "src/data/synthetic.hpp"
#include "src/models/small_cnn.hpp"

int main() {
  using namespace ftpim;

  // 1. Data: a 10-class procedural vision task (CIFAR stand-in).
  SynthVisionConfig data_cfg;
  data_cfg.num_classes = 10;
  data_cfg.image_size = 16;
  data_cfg.samples = env_int("FTPIM_TRAIN", 1024);
  const auto train = make_synthvision(data_cfg, /*sample_stream=*/1);
  data_cfg.samples = env_int("FTPIM_TEST", 512);
  const auto test = make_synthvision(data_cfg, /*sample_stream=*/2);

  // 2. Model + standard training.
  auto model = make_small_cnn(SmallCnnConfig{.image_size = 16, .width = 8, .classes = 10});
  TrainConfig tc;
  tc.epochs = env_int("FTPIM_EPOCHS", 6);
  tc.verbose = true;
  Trainer(*model, *train, tc).run();
  const double acc_pretrain = evaluate_accuracy(*model, *test);
  std::printf("\nclean accuracy after standard training: %.2f%%\n", acc_pretrain * 100.0);

  // 3. Deploy on faulty ReRAM: average accuracy over simulated devices.
  DefectEvalConfig eval_cfg;
  eval_cfg.num_runs = env_int("FTPIM_RUNS", 10);
  const double p_sa = 0.01;  // 1% of cells stuck
  const DefectEvalResult broken = evaluate_under_defects(*model, *test, p_sa, eval_cfg);
  std::printf("accuracy on devices with P_sa=%.3f: %.2f%% (+/- %.2f)\n", p_sa,
              broken.mean_acc * 100.0, broken.std_acc * 100.0);

  // 4. One-shot stochastic fault-tolerant retraining at the target rate,
  // checkpointed every epoch. Kill the process at any instant and rerun:
  // resume() continues from the newest checkpoint and lands on the exact
  // same weights the uninterrupted run would have produced.
  const std::string ckpt_dir =
      (std::filesystem::temp_directory_path() / "ftpim_quickstart_ckpt").string();
  FtTrainConfig ft;
  ft.base = tc;
  ft.base.verbose = false;
  ft.scheme = FtScheme::kOneShot;
  ft.target_p_sa = p_sa;
  ft.checkpoint.dir = ckpt_dir;
  ft.checkpoint.every_epochs = 1;
  ft.checkpoint.keep_last = 2;
  FaultTolerantTrainer ft_trainer(*model, *train, ft);
  if (const std::string resume_from = latest_checkpoint(ckpt_dir); !resume_from.empty()) {
    std::printf("resuming FT training from %s\n", resume_from.c_str());
    ft_trainer.resume(resume_from);
  } else {
    ft_trainer.run();
  }

  // The final checkpoint doubles as the deployable artifact: reload it into
  // a fresh model and verify the weights round-tripped bit-exactly.
  auto reloaded = make_small_cnn(SmallCnnConfig{.image_size = 16, .width = 8, .classes = 10});
  const TrainingCheckpoint final_ckpt = load_training_checkpoint(latest_checkpoint(ckpt_dir));
  load_state_dict_into(*reloaded, final_ckpt.model);
  if (encode_state_dict(state_dict_of(*reloaded)) !=
      encode_state_dict(state_dict_of(*model))) {
    std::printf("checkpoint reload mismatch!\n");
    return 1;
  }
  std::printf("checkpoint round-trip verified: reloaded weights are bit-identical\n");
  std::filesystem::remove_all(ckpt_dir);  // keep reruns starting fresh

  const double acc_retrain = evaluate_accuracy(*model, *test);
  const DefectEvalResult hardened = evaluate_under_defects(*model, *test, p_sa, eval_cfg);
  std::printf("after FT training: clean %.2f%%, under defects %.2f%% (+/- %.2f)\n",
              acc_retrain * 100.0, hardened.mean_acc * 100.0, hardened.std_acc * 100.0);

  // 5. Stability Score quantifies the robustness/accuracy trade-off.
  const double ss_before = stability_score({acc_pretrain, acc_pretrain, broken.mean_acc});
  const double ss_after = stability_score({acc_pretrain, acc_retrain, hardened.mean_acc});
  std::printf("Stability Score: %.2f -> %.2f\n", ss_before, ss_after);
  // Fail only on a catastrophic regression; at easy settings both models can
  // sit within noise of each other.
  return hardened.mean_acc > broken.mean_acc - 0.05 ? 0 : 1;
}
