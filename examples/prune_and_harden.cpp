// Compress-then-harden pipeline for resource-constrained edge systems:
// ADMM-prune a trained ResNet to 70% sparsity, show the amplified fragility
// the paper reports (§IV-C), then recover robustness with stochastic FT
// training on the pruned model — masks stay intact throughout.
#include <cstdio>

#include "src/common/config.hpp"
#include "src/core/evaluator.hpp"
#include "src/core/ft_trainer.hpp"
#include "src/core/stability.hpp"
#include "src/core/trainer.hpp"
#include "src/data/synthetic.hpp"
#include "src/models/resnet.hpp"
#include "src/prune/admm_pruner.hpp"
#include "src/prune/sparsity.hpp"

int main() {
  using namespace ftpim;

  SynthVisionConfig data_cfg;
  data_cfg.num_classes = 10;
  data_cfg.image_size = 16;
  data_cfg.samples = env_int("FTPIM_TRAIN", 1024);
  const auto train = make_synthvision(data_cfg, 1);
  data_cfg.samples = env_int("FTPIM_TEST", 512);
  const auto test = make_synthvision(data_cfg, 2);

  auto model = make_resnet20(10, /*base_width=*/8, /*seed=*/3);
  TrainConfig tc;
  tc.epochs = env_int("FTPIM_EPOCHS", 4);
  Trainer(*model, *train, tc).run();
  const double acc_dense = evaluate_accuracy(*model, *test);
  std::printf("dense model: %.2f%%\n", acc_dense * 100.0);

  // --- ADMM pruning to 70% sparsity --------------------------------------
  const double sparsity = env_double("FTPIM_SPARSITY", 0.70);
  AdmmPruner pruner(*model, AdmmConfig{.sparsity = sparsity, .rho = 1e-2f});
  {
    TrainConfig admm_tc = tc;
    admm_tc.sgd.lr = 0.01f;
    Trainer trainer(*model, *train, admm_tc);
    TrainHooks hooks;
    hooks.after_backward = [&pruner](int, std::int64_t) { pruner.regularize_grads(); };
    hooks.after_epoch = [&pruner](int, float) {
      pruner.dual_update();
      std::printf("  ADMM primal residual: %.4f\n", pruner.primal_residual());
    };
    trainer.set_hooks(hooks);
    trainer.run();
  }
  const auto masks = pruner.finalize();
  {
    TrainConfig ft_tc = tc;
    ft_tc.sgd.lr = 0.01f;
    Trainer trainer(*model, *train, ft_tc);
    for (const PruneMask& m : masks) trainer.optimizer().set_mask(m.param, m.mask);
    trainer.run();
  }
  const double acc_pruned = evaluate_accuracy(*model, *test);
  std::printf("after ADMM pruning + fine-tune: %.2f%% at %.1f%% sparsity\n", acc_pruned * 100.0,
              model_sparsity(*model) * 100.0);
  std::printf("%s\n", sparsity_report(*model).c_str());

  // --- fragility of the pruned model --------------------------------------
  DefectEvalConfig eval_cfg;
  eval_cfg.num_runs = env_int("FTPIM_RUNS", 10);
  const double p_sa = env_double("FTPIM_PSA", 0.01);
  const double broken = evaluate_under_defects(*model, *test, p_sa, eval_cfg).mean_acc;
  std::printf("pruned model under P_sa=%.3f defects: %.2f%%\n", p_sa, broken * 100.0);

  // --- FT training on the pruned model (masks preserved via optimizer) ----
  FtTrainConfig ft;
  ft.base = tc;
  ft.base.sgd.lr = 0.01f;
  ft.scheme = FtScheme::kOneShot;
  ft.target_p_sa = p_sa * 5;  // paper: train somewhat above the testing rate
  {
    // FaultTolerantTrainer drives a Trainer internally; pruned positions are
    // kept at zero by re-applying masks after training.
    FaultTolerantTrainer trainer(*model, *train, ft);
    trainer.run();
    for (const PruneMask& m : masks) {
      apply_mask(const_cast<Param*>(m.param)->value, m.mask);
    }
  }
  const double acc_ft = evaluate_accuracy(*model, *test);
  const double hardened = evaluate_under_defects(*model, *test, p_sa, eval_cfg).mean_acc;
  std::printf("after FT training: clean %.2f%%, under defects %.2f%% (sparsity %.1f%%)\n",
              acc_ft * 100.0, hardened * 100.0, model_sparsity(*model) * 100.0);
  std::printf("Stability Score: %.2f -> %.2f\n",
              stability_score({acc_pruned, acc_pruned, broken}),
              stability_score({acc_pruned, acc_ft, hardened}));
  return hardened > broken - 0.05 ? 0 : 1;  // fail only on clear regression
}
