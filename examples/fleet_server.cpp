// Edge-fleet serving demo: one FT-trainable model, N defective replicas,
// request-driven batched inference.
//
// Trains a SmallCNN, builds an InferenceServer whose ReplicaPool holds
// FTPIM_REPLICAS clones each carrying its own persistent stuck-at defect map,
// then fires synthetic traffic at it from FTPIM_CLIENTS threads. Reports the
// per-replica accuracy spread (the "device lottery" the paper's FT training
// narrows), dynamic-batching behavior, and end-to-end latency percentiles.
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "src/common/config.hpp"
#include "src/common/parallel.hpp"
#include "src/common/timer.hpp"
#include "src/core/evaluator.hpp"
#include "src/core/trainer.hpp"
#include "src/data/synthetic.hpp"
#include "src/models/small_cnn.hpp"
#include "src/serve/inference_server.hpp"

int main() {
  using namespace ftpim;
  using namespace ftpim::serve;

  const int replicas = env_int("FTPIM_REPLICAS", 4);
  const int clients = env_int("FTPIM_CLIENTS", 4);
  const int requests_per_client = env_int("FTPIM_REQS", 256);
  const double p_sa = env_double("FTPIM_PSA", 0.01);

  SynthVisionConfig data_cfg;
  data_cfg.num_classes = 10;
  data_cfg.image_size = 16;
  data_cfg.samples = env_int("FTPIM_TRAIN", 1024);
  const auto train = make_synthvision(data_cfg, 1);
  data_cfg.samples = env_int("FTPIM_TEST", 512);
  const auto test = make_synthvision(data_cfg, 2);

  SmallCnnConfig model_cfg;
  model_cfg.image_size = 16;
  auto model = make_small_cnn(model_cfg);
  TrainConfig tc;
  tc.epochs = env_int("FTPIM_EPOCHS", 4);
  Trainer(*model, *train, tc).run();
  const double clean_acc = evaluate_accuracy(*model, *test);
  std::printf("factory model accuracy (no defects): %.2f%%\n", clean_acc * 100.0);

  ServerConfig cfg;
  cfg.queue_capacity = 512;
  cfg.batching.max_batch_size = 16;
  cfg.batching.max_linger_ns = 500'000;  // 0.5ms
  cfg.pool.num_replicas = replicas;
  cfg.pool.p_sa = p_sa;
  cfg.pool.seed = 31337;
  InferenceServer server(*model, cfg);

  std::printf("fleet: %d replicas at per-cell failure rate %.3f | %d clients x %d reqs | "
              "batch<=%lld linger %.1fms | threads: %d\n\n",
              replicas, p_sa, clients, requests_per_client,
              static_cast<long long>(cfg.batching.max_batch_size),
              static_cast<double>(cfg.batching.max_linger_ns) * 1e-6, num_threads());

  // Per-replica accuracy spread: each defective clone evaluated offline,
  // before traffic starts driving them.
  std::printf("per-replica accuracy (persistent defect maps):\n");
  for (int r = 0; r < server.pool().size(); ++r) {
    const double acc = evaluate_accuracy(server.pool().replica(r), *test);
    std::printf("  replica %d: %.2f%%  (cell fault rate %.4f, %lld weights hit)\n", r,
                acc * 100.0, server.pool().injection_stats(r).cell_fault_rate(),
                static_cast<long long>(server.pool().injection_stats(r).affected_weights));
  }

  server.start();
  Timer wall;
  std::vector<std::thread> client_threads;
  std::vector<std::int64_t> client_hits(static_cast<std::size_t>(clients), 0);
  client_threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    client_threads.emplace_back([&, c] {
      std::int64_t hits = 0;
      for (int i = 0; i < requests_per_client; ++i) {
        const std::int64_t idx = (static_cast<std::int64_t>(c) * requests_per_client + i) %
                                 test->size();
        const Sample sample = test->get(idx);
        std::future<InferenceResult> fut = server.submit(sample.image);
        const InferenceResult res = fut.get();
        if (res.predicted == sample.label) ++hits;
      }
      client_hits[static_cast<std::size_t>(c)] = hits;
    });
  }
  for (std::thread& t : client_threads) t.join();
  server.drain();
  const double secs = wall.seconds();
  server.stop();

  std::int64_t hits = 0;
  for (const std::int64_t h : client_hits) hits += h;
  const std::int64_t total = static_cast<std::int64_t>(clients) * requests_per_client;
  const ServerStats stats = server.stats();

  std::printf("\ntraffic: %lld requests in %.2fs -> %.0f req/s | served accuracy %.2f%%\n",
              static_cast<long long>(total), secs, static_cast<double>(total) / secs,
              100.0 * static_cast<double>(hits) / static_cast<double>(total));
  std::printf("server: %s\n", stats.summary_line().c_str());
  std::printf("latency: mean %.3fms | min %.3fms | max %.3fms\n",
              stats.latency.mean_ns() * 1e-6,
              static_cast<double>(stats.latency.min_ns()) * 1e-6,
              static_cast<double>(stats.latency.max_ns()) * 1e-6);
  std::printf("per-replica served:");
  for (std::size_t r = 0; r < stats.per_replica_served.size(); ++r) {
    std::printf(" r%zu=%lld", r, static_cast<long long>(stats.per_replica_served[r]));
  }
  std::printf("\n");
  return 0;
}
