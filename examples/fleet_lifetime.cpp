// Fleet lifetime study: a thousand virtual edge devices, four repair
// policies, survival curves, and a crash-safe resumable sweep.
//
// Each device is an independent virtual PIM accelerator: its own stuck-at
// defect rate, wear-out rate, traffic level, and datapath (int8 crossbars
// with ABFT, or the float fault-folding path), all drawn deterministically
// from FleetConfig::seed. The simulator drives every device through the
// serve -> age -> upset -> probe -> policy lifecycle tick by tick and
// aggregates the fleet's history into Kaplan-Meier survival curves and a
// maintenance bill, so the four policies can be compared on bit-identical
// fleets.
//
// The last section kills a checkpointing sweep halfway and resumes it from
// the FTCK file, verifying the resumed fleet's timeline is bit-exact against
// the uninterrupted run — the property that makes week-long sweeps safe to
// preempt.
//
// Knobs: FTPIM_FLEET_DEVICES (default 1000), FTPIM_FLEET_TICKS (default 24),
//        FTPIM_THREADS.
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "src/common/checkpoint.hpp"
#include "src/common/config.hpp"
#include "src/common/parallel.hpp"
#include "src/common/timer.hpp"
#include "src/core/table_printer.hpp"
#include "src/fleet/fleet_simulator.hpp"
#include "src/models/mlp.hpp"

namespace {

using namespace ftpim;
using namespace ftpim::fleet;

FleetConfig study_config(int devices, std::int64_t ticks, RepairPolicyKind policy) {
  FleetConfig cfg;
  cfg.num_devices = devices;
  cfg.ticks = ticks;
  cfg.sample_shape = {16};
  cfg.probe_samples = 16;
  cfg.accuracy_floor = 0.55;  // a device below 55% probe accuracy is dead
  cfg.interval_batches = 16;
  cfg.p_transient_per_tick = 0.002;
  cfg.seed = 4242;
  // Heterogeneous fleet: defect rate, wear rate and traffic each span a
  // log-uniform/uniform range; a quarter of the fleet runs the float path.
  cfg.profile.p_sa_min = 0.01;
  cfg.profile.p_sa_max = 0.08;
  cfg.profile.aging_min = 0.001;
  cfg.profile.aging_max = 0.01;
  cfg.profile.traffic_min = 8;
  cfg.profile.traffic_max = 32;
  cfg.profile.quantized_fraction = 0.75;
  cfg.policy = policy;
  cfg.policy_config.refresh_every_ticks = 4;
  cfg.policy_config.max_scrub_retries = 1;
  cfg.quantized.adc.bits = 0;
  return cfg;
}

std::vector<std::uint8_t> timeline_bytes(const FleetSimulator& sim) {
  ByteWriter out;
  for (const TickAggregate& agg : sim.timeline()) agg.encode(out);
  return out.take();
}

}  // namespace

int main() {
  const int devices = env_int("FTPIM_FLEET_DEVICES", 1000);
  const auto ticks = static_cast<std::int64_t>(env_int("FTPIM_FLEET_TICKS", 24));
  const auto model = make_mlp({16, 24, 4}, 7);

  std::printf("=== fleet lifetime study: %d devices, %lld ticks, 4 repair policies ===\n",
              devices, static_cast<long long>(ticks));
  std::printf("model: MLP 16-24-4 | threads: %d\n\n", num_threads());

  TablePrinter table("policy comparison (bit-identical fleets)",
                     {"policy", "surv%", "life", "repairs", "scrubs", "detect", "cost",
                      "p50acc", "wall_s"});
  for (const RepairPolicyKind policy : kAllRepairPolicies) {
    FleetSimulator sim(*model, study_config(devices, ticks, policy));
    Timer wall;
    const FleetSummary s = sim.run();
    const double secs = wall.seconds();
    std::printf("%-22s S(t) %s  %.1f%% survive\n", to_string(policy),
                survival_sparkline(survival_curve(sim.timeline())).c_str(),
                s.survival_fraction * 100.0);
    table.add_row(to_string(policy),
                  {s.survival_fraction * 100.0, s.mean_lifetime_ticks,
                   static_cast<double>(s.repairs), static_cast<double>(s.scrubs),
                   static_cast<double>(s.detections), s.total_cost, s.final_acc_p50, secs});
  }
  std::printf("\n%s\n", table.render(0, 2).c_str());
  std::printf("cost = repairs x %.0f + scrubs x %.0f (device swaps vs re-programming)\n\n",
              RepairPolicyConfig{}.repair_cost, RepairPolicyConfig{}.scrub_cost);

  // --- Crash-safe sweeps: kill at half the horizon, resume, compare --------
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "ftpim_fleet_lifetime";
  std::filesystem::create_directories(dir);
  FleetConfig cfg = study_config(devices, ticks, RepairPolicyKind::kDetectionDrivenScrub);
  cfg.checkpoint_path = (dir / "sweep.ftck").string();
  cfg.checkpoint_every_ticks = ticks / 2;

  FleetConfig clean = cfg;
  clean.checkpoint_path.clear();
  FleetSimulator uninterrupted(*model, clean);
  uninterrupted.run();

  {
    FleetSimulator doomed(*model, cfg);
    for (std::int64_t t = 0; t < ticks / 2; ++t) doomed.step();
    std::printf("sweep 'crashed' at tick %lld/%lld; checkpoint: %s\n",
                static_cast<long long>(doomed.next_tick()), static_cast<long long>(ticks),
                cfg.checkpoint_path.c_str());
  }  // the process state is gone — only the FTCK file survives

  FleetSimulator resumed(*model, cfg);
  resumed.resume(cfg.checkpoint_path);
  std::printf("resumed at tick %lld, running to the horizon...\n",
              static_cast<long long>(resumed.next_tick()));
  resumed.run();

  const bool bit_exact = timeline_bytes(resumed) == timeline_bytes(uninterrupted) &&
                         resumed.death_ticks() == uninterrupted.death_ticks();
  std::printf("resumed timeline vs uninterrupted run: %s\n",
              bit_exact ? "bit-exact" : "MISMATCH");
  return bit_exact ? 0 : 1;
}
