// Edge-fleet deployment scenario (the paper's motivating use case):
// one fault-tolerant model is trained ONCE and shipped to a fleet of
// mass-produced devices, each with its own random defect map — no
// per-device retraining. Reports the fleet accuracy distribution and the
// fraction of devices meeting a quality bar, FT vs non-FT.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/common/config.hpp"
#include "src/core/evaluator.hpp"
#include "src/core/ft_trainer.hpp"
#include "src/core/trainer.hpp"
#include "src/data/synthetic.hpp"
#include "src/models/resnet.hpp"

namespace {

using namespace ftpim;

struct FleetReport {
  double mean, p10, p50, p90;
  double yield;  ///< fraction of devices within 2pt of clean accuracy
};

FleetReport fleet_eval(Module& model, const Dataset& test, double p_sa, int devices,
                       double clean_acc) {
  DefectEvalConfig cfg;
  cfg.num_runs = devices;
  cfg.seed = 31337;
  const DefectEvalResult r = evaluate_under_defects(model, test, p_sa, cfg);
  std::vector<double> accs = r.run_accs;
  std::sort(accs.begin(), accs.end());
  auto pct = [&accs](double q) {
    const auto idx = static_cast<std::size_t>(q * static_cast<double>(accs.size() - 1));
    return accs[idx];
  };
  int good = 0;
  for (const double a : accs) {
    if (a >= clean_acc - 0.02) ++good;
  }
  return FleetReport{r.mean_acc, pct(0.10), pct(0.50), pct(0.90),
                     static_cast<double>(good) / static_cast<double>(accs.size())};
}

void print_report(const char* name, const FleetReport& r) {
  std::printf("%-18s mean %.2f%% | p10 %.2f%% | p50 %.2f%% | p90 %.2f%% | yield %.0f%%\n", name,
              r.mean * 100.0, r.p10 * 100.0, r.p50 * 100.0, r.p90 * 100.0, r.yield * 100.0);
}

}  // namespace

int main() {
  using namespace ftpim;
  const int devices = env_int("FTPIM_DEVICES", 25);
  const double p_sa = env_double("FTPIM_PSA", 0.01);

  SynthVisionConfig data_cfg;
  data_cfg.num_classes = 10;
  data_cfg.image_size = 16;
  data_cfg.samples = env_int("FTPIM_TRAIN", 1024);
  const auto train = make_synthvision(data_cfg, 1);
  data_cfg.samples = env_int("FTPIM_TEST", 512);
  const auto test = make_synthvision(data_cfg, 2);

  auto model = make_resnet20(10, /*base_width=*/8, /*seed=*/1);
  TrainConfig tc;
  tc.epochs = env_int("FTPIM_EPOCHS", 4);
  Trainer(*model, *train, tc).run();
  const double clean = evaluate_accuracy(*model, *test);
  std::printf("factory model accuracy (no defects): %.2f%%\n", clean * 100.0);
  std::printf("simulated fleet: %d devices at per-cell failure rate %.3f\n\n", devices, p_sa);

  print_report("without FT:", fleet_eval(*model, *test, p_sa, devices, clean));

  // Progressive FT training to the deployment rate.
  FtTrainConfig ft;
  ft.base = tc;
  ft.base.epochs = std::max(1, tc.epochs / 4);
  ft.scheme = FtScheme::kProgressive;
  ft.target_p_sa = p_sa;
  FaultTolerantTrainer(*model, *train, ft).run();
  const double clean_ft = evaluate_accuracy(*model, *test);
  std::printf("\nafter progressive FT training (clean %.2f%%):\n", clean_ft * 100.0);
  print_report("with FT:", fleet_eval(*model, *test, p_sa, devices, clean));
  return 0;
}
