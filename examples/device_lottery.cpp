// The "device lottery": why per-device retraining does not scale.
//
// Retrains a model for one specific defective device (the DAC'17-style
// baseline), then shows what happens when that binary is flashed onto other
// devices from the same production line — versus one stochastic FT model
// shared by all. This is the paper's §I mass-production argument as a
// runnable scenario.
#include <cstdio>
#include <vector>

#include "src/common/config.hpp"
#include "src/common/stats.hpp"
#include "src/core/device_specific.hpp"
#include "src/core/evaluator.hpp"
#include "src/core/ft_trainer.hpp"
#include "src/core/trainer.hpp"
#include "src/data/synthetic.hpp"
#include "src/models/resnet.hpp"

int main() {
  using namespace ftpim;
  const double p_sa = env_double("FTPIM_PSA", 0.02);
  const int devices = env_int("FTPIM_DEVICES", 6);
  const std::uint64_t defect_seed = 777;

  SynthVisionConfig data_cfg;
  data_cfg.num_classes = 10;
  data_cfg.image_size = 16;
  data_cfg.samples = env_int("FTPIM_TRAIN", 896);
  const auto train = make_synthvision(data_cfg, 1);
  data_cfg.samples = env_int("FTPIM_TEST", 384);
  const auto test = make_synthvision(data_cfg, 2);

  auto model = make_resnet20(10, /*base_width=*/8, /*seed=*/5);
  TrainConfig tc;
  tc.epochs = env_int("FTPIM_EPOCHS", 3);
  Trainer(*model, *train, tc).run();
  std::printf("factory model: %.2f%% clean accuracy\n\n",
              evaluate_accuracy(*model, *test) * 100.0);

  auto on_device = [&](Sequential& m, int d) {
    return evaluate_on_device(m, *test, p_sa, kPaperSa0Fraction, InjectorConfig{}, defect_seed,
                              static_cast<std::uint64_t>(d));
  };

  // Per-device retraining for device 0 only (what a lab can afford).
  auto specific = make_resnet20(10, 8, 5);
  load_state_dict_into(*specific, state_dict_of(*model));
  DeviceSpecificConfig ds;
  ds.base = tc;
  ds.p_sa = p_sa;
  ds.defect_master_seed = defect_seed;
  ds.device_index = 0;
  device_specific_retrain(*specific, *train, ds);

  // One stochastic FT model for everyone.
  auto ft = make_resnet20(10, 8, 5);
  load_state_dict_into(*ft, state_dict_of(*model));
  FtTrainConfig ftc;
  ftc.base = tc;
  ftc.target_p_sa = p_sa * 5;
  FaultTolerantTrainer(*ft, *train, ftc).run();

  std::printf("%-8s %-16s %-22s %-18s\n", "device", "no mitigation", "retrained-for-dev0",
              "stochastic FT");
  std::vector<double> spec_accs, ft_accs, plain_accs;
  for (int d = 0; d < devices; ++d) {
    const double a = on_device(*model, d);
    const double b = on_device(*specific, d);
    const double c = on_device(*ft, d);
    plain_accs.push_back(a);
    spec_accs.push_back(b);
    ft_accs.push_back(c);
    std::printf("dev%-5d %-16.2f %-22.2f %-18.2f%s\n", d, a * 100.0, b * 100.0, c * 100.0,
                d == 0 ? "   <- retraining target" : "");
  }
  std::printf("\nfleet means: no-mitigation %.2f%% | device-specific %.2f%% | FT %.2f%%\n",
              summarize(plain_accs).mean * 100.0, summarize(spec_accs).mean * 100.0,
              summarize(ft_accs).mean * 100.0);
  std::printf("device-specific retraining cost scales with fleet size; FT training is one-off.\n");
  return 0;
}
