// Quantized deployment design space: accuracy vs conductance levels vs ADC
// resolution, with and without stuck-at faults.
//
// Trains a small classifier in float, then evaluates it through the
// QuantizedCrossbarEngine (int8 activations, L-level cells, b-bit ADC) at
// every (levels, adc_bits) grid point — first defect-free (pure quantization
// loss) and then at a per-cell stuck-at rate (faults applied in the level
// domain, where the hardware sees them). The defect-free column shows the
// acceptance criterion of the quantized engine: >= 16 levels with an 8-bit
// ADC stays within 1% of the float baseline.
//
// Knobs: FTPIM_PSA (default 0.02), FTPIM_RUNS (default 3), FTPIM_EPOCHS,
// FTPIM_ADC_RANGE (ADC range_factor override).
#include <cstdio>
#include <memory>
#include <vector>

#include "src/common/config.hpp"
#include "src/common/rng.hpp"
#include "src/core/evaluator.hpp"
#include "src/core/trainer.hpp"
#include "src/data/synthetic.hpp"
#include "src/nn/activations.hpp"
#include "src/nn/linear.hpp"
#include "src/nn/pooling.hpp"
#include "src/nn/sequential.hpp"
#include "src/reram/qinfer/quantized_engine.hpp"

namespace {

using namespace ftpim;

std::unique_ptr<Sequential> make_model(std::int64_t image, std::int64_t classes,
                                       std::uint64_t seed) {
  Rng rng(seed);
  auto net = std::make_unique<Sequential>();
  net->emplace<Flatten>();
  net->emplace<Linear>(3 * image * image, 64, rng, /*with_bias=*/true);
  net->emplace<ReLU>();
  net->emplace<Linear>(64, classes, rng, /*with_bias=*/true);
  return net;
}

}  // namespace

int main() {
  const double p_sa = env_double("FTPIM_PSA", 0.02);
  const int runs = env_int("FTPIM_RUNS", 3);
  const std::int64_t image = 8, classes = 4;

  SynthVisionConfig dc;
  dc.num_classes = classes;
  dc.image_size = image;
  dc.samples = 512;
  dc.seed = 41;
  const auto train = make_synthvision(dc, 1);
  dc.samples = 256;
  const auto test = make_synthvision(dc, 2);

  auto model = make_model(image, classes, 15);
  TrainConfig tc;
  tc.epochs = env_int("FTPIM_EPOCHS", 6);
  tc.batch_size = 32;
  tc.sgd.lr = 0.05f;
  tc.augment.enabled = false;
  tc.seed = 7;
  Trainer(*model, *train, tc).run();
  const double float_acc = evaluate_accuracy(*model, *test);
  std::printf("float baseline: %.2f%% (chance %.1f%%)\n\n", float_acc * 100.0,
              100.0 / static_cast<double>(classes));

  const std::vector<int> level_grid = {4, 8, 16, 64, 256};
  const std::vector<int> adc_grid = {4, 6, 8, 0};  // 0 = ideal readout

  std::printf("accuracy (%%) through the quantized engine, p_sa = 0 (quantization loss only)\n");
  std::printf("%8s", "levels");
  for (const int bits : adc_grid) {
    if (bits == 0) {
      std::printf(" %11s", "ideal ADC");
    } else {
      std::printf(" %8d-bit", bits);
    }
  }
  std::printf("\n");

  DefectEvalConfig cfg;
  cfg.engine = EvalEngine::kQuantized;
  cfg.batch_size = 64;
  cfg.quantized.adc.range_factor =
      env_double_in("FTPIM_ADC_RANGE", cfg.quantized.adc.range_factor, 0.0, 1.0);
  for (const int levels : level_grid) {
    std::printf("%8d", levels);
    for (const int bits : adc_grid) {
      cfg.quantized.levels = levels;
      cfg.quantized.adc.bits = bits;
      cfg.num_runs = 1;
      const double acc = evaluate_under_defects(*model, *test, 0.0, cfg).mean_acc;
      std::printf(" %11.2f%s", acc * 100.0,
                  (levels >= 16 && bits >= 8 && acc + 0.01 < float_acc) ? "!" : " ");
    }
    std::printf("\n");
  }
  std::printf("('!' marks a >=16-level / >=8-bit point more than 1%% below float)\n\n");

  std::printf("accuracy (%%) at p_sa = %.3f (%d device draws per point)\n", p_sa, runs);
  std::printf("%8s", "levels");
  for (const int bits : adc_grid) {
    if (bits == 0) {
      std::printf(" %11s", "ideal ADC");
    } else {
      std::printf(" %8d-bit", bits);
    }
  }
  std::printf("\n");
  for (const int levels : level_grid) {
    std::printf("%8d", levels);
    for (const int bits : adc_grid) {
      cfg.quantized.levels = levels;
      cfg.quantized.adc.bits = bits;
      cfg.num_runs = runs;
      const DefectEvalResult r = evaluate_under_defects(*model, *test, p_sa, cfg);
      std::printf(" %11.2f ", r.mean_acc * 100.0);
    }
    std::printf("\n");
  }
  std::printf("\nfaults hit the LEVEL domain (stuck-off = level 0, stuck-on = level L-1):\n"
              "more levels shrink quantization loss but do not change the fault blast\n"
              "radius, while coarse ADCs compound with faults (a stuck-on cell raises\n"
              "the column full-scale, widening every other weight's ADC step).\n");
  return 0;
}
