// Cell-level crossbar tour: program a weight matrix onto tiled ReRAM
// crossbars, inject per-device defects, and compare the analog MVM against
// the ideal digital result — including the agreement between the cell-level
// engine and the fast weight-space injector used during training.
#include <cmath>
#include <cstdio>
#include <vector>

#include "src/common/config.hpp"
#include "src/common/rng.hpp"
#include "src/reram/crossbar_engine.hpp"
#include "src/reram/fault_injector.hpp"
#include "src/tensor/gemm.hpp"
#include "src/tensor/tensor.hpp"

namespace {

using namespace ftpim;

double rel_error(const std::vector<float>& a, const std::vector<float>& b) {
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += (a[i] - b[i]) * (a[i] - b[i]);
    den += b[i] * b[i];
  }
  return std::sqrt(num / (den + 1e-12));
}

}  // namespace

int main() {
  using namespace ftpim;
  const std::int64_t out = env_int("FTPIM_OUT", 96);
  const std::int64_t in = env_int("FTPIM_IN", 200);

  // A random "layer" to deploy.
  Tensor w(Shape{out, in});
  Rng rng(42);
  for (std::int64_t i = 0; i < w.numel(); ++i) w[i] = 0.2f * rng.normal();

  CrossbarEngineConfig cfg;
  cfg.tile_rows = 128;
  cfg.tile_cols = 128;
  CrossbarEngine engine(w, cfg);
  std::printf("weight matrix [%lld x %lld] -> %lld crossbar tiles (%lld cells)\n",
              static_cast<long long>(out), static_cast<long long>(in),
              static_cast<long long>(engine.tile_count()),
              static_cast<long long>(engine.total_cells()));

  std::vector<float> x(static_cast<std::size_t>(in));
  for (auto& v : x) v = rng.uniform(-1.0f, 1.0f);
  std::vector<float> y_ideal(static_cast<std::size_t>(out), 0.0f);
  gemm(out, 1, in, 1.0f, w.data(), x.data(), 0.0f, y_ideal.data());

  std::vector<float> y_xbar(static_cast<std::size_t>(out));
  engine.mvm(x.data(), y_xbar.data());
  std::printf("defect-free crossbar MVM vs ideal GEMM: rel. error %.2e\n\n",
              rel_error(y_xbar, y_ideal));

  std::printf("%-8s %-12s %-14s %-12s\n", "P_sa", "stuck cells", "MVM rel.err", "readback L2");
  for (const double p_sa : {0.001, 0.01, 0.05, 0.1}) {
    engine.clear_defects();
    // Re-program: stuck cells from previous device are cleared, fresh die.
    CrossbarEngine device(w, cfg);
    device.apply_device_defects(StuckAtFaultModel(p_sa), /*master_seed=*/7,
                                /*device_index=*/static_cast<std::uint64_t>(p_sa * 1e6));
    device.mvm(x.data(), y_xbar.data());
    const Tensor w_eff = device.read_back();
    double diff = 0.0;
    for (std::int64_t i = 0; i < w.numel(); ++i) {
      diff += (w_eff[i] - w[i]) * (w_eff[i] - w[i]);
    }
    std::printf("%-8g %-12lld %-14.3e %-12.4f\n", p_sa,
                static_cast<long long>(device.stuck_cells()), rel_error(y_xbar, y_ideal),
                std::sqrt(diff));
  }

  // Fast path equivalence: weight-space injector matches cell-level stats.
  Tensor w_fast = w;
  Rng inj_rng(123);
  const InjectionStats stats =
      apply_stuck_at_faults(w_fast, StuckAtFaultModel(0.05), InjectorConfig{}, inj_rng);
  std::printf("\nweight-space injector at P_sa=0.05: %lld/%lld cells faulted (rate %.4f)\n",
              static_cast<long long>(stats.faulted_cells), static_cast<long long>(stats.cells),
              stats.cell_fault_rate());
  return 0;
}
