// Online fault detection & self-scrubbing demo (DESIGN.md §14).
//
// Act 1, one engine: program a matrix with ABFT checksum columns, baseline,
// land stuck-at faults AFTER the baseline, and watch a single batch name the
// damaged (row-tile, col-tile) pairs. Scrub the flagged tiles in place and
// verify the readout is healed — bit-exact against the pristine engine when
// every damaged tile was caught.
//
// Act 2, a fleet: quantized replicas serve traffic with checksums armed
// while in-service aging grows new faults. Each flagged batch depresses the
// health score and is answered with a tile scrub; persistent damage (the
// aging map survives every scrub) exhausts the retry budget and escalates
// to quarantine -> repair. The closing health_line carries the whole story.
#include <cstdio>
#include <cstring>
#include <future>
#include <vector>

#include "src/common/config.hpp"
#include "src/common/rng.hpp"
#include "src/core/trainer.hpp"
#include "src/data/synthetic.hpp"
#include "src/models/small_cnn.hpp"
#include "src/reram/fault_model.hpp"
#include "src/reram/qinfer/quantized_engine.hpp"
#include "src/serve/inference_server.hpp"
#include "src/tensor/tensor.hpp"

namespace {

using namespace ftpim;

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  Tensor t(std::move(shape));
  Rng rng(seed);
  for (std::int64_t i = 0; i < t.numel(); ++i) t[i] = rng.normal();
  return t;
}

void act1_single_engine() {
  const std::int64_t out = 256, in = 512, batch = 32;
  const double p_sa = env_double("FTPIM_PSA", 0.01);
  const Tensor w = random_tensor(Shape{out, in}, 11);
  const Tensor x = random_tensor(Shape{batch, in}, 13);

  qinfer::QuantizedEngineConfig qc;  // 16 levels, 8-bit ADC
  qc.abft.enabled = true;
  qinfer::QuantizedCrossbarEngine pristine(w, qc);
  qinfer::QuantizedCrossbarEngine eng(w, qc);
  std::printf("=== act 1: one %lldx%lld engine, %lld checksum columns per "
              "%lldx%lld tile ===\n",
              static_cast<long long>(out), static_cast<long long>(in),
              static_cast<long long>(eng.checksum_columns()),
              static_cast<long long>(qc.tile_rows), static_cast<long long>(qc.tile_cols));

  std::vector<float> y_ok(static_cast<std::size_t>(batch * out));
  std::vector<float> y(y_ok.size());
  pristine.mvm_batch(x.data(), batch, y_ok.data());

  // Faults land AFTER construction (the clean state is the baseline), so
  // every one of them is post-baseline damage the checksums should ring on.
  eng.apply_device_defects(StuckAtFaultModel(p_sa), /*master_seed=*/23, /*device=*/0);
  std::printf("injected stuck-at faults at p_sa=%g: %lld stuck cells\n", p_sa,
              static_cast<long long>(eng.stuck_cells()));

  eng.mvm_batch(x.data(), batch, y.data());
  abft::TileFaultReport rep = eng.take_abft_report();
  std::printf("one batch of %lld: %lld/%lld tiles flagged (%lld checks, %lld mismatches)\n",
              static_cast<long long>(batch), static_cast<long long>(rep.flagged_tiles()),
              static_cast<long long>(eng.tile_count()), static_cast<long long>(rep.checks),
              static_cast<long long>(rep.mismatches));
  for (const abft::TileFaultCount& t : rep.tiles) {
    std::printf("  tile (rt=%lld, ct=%lld): %lld mismatched samples\n",
                static_cast<long long>(t.row_tile), static_cast<long long>(t.col_tile),
                static_cast<long long>(t.mismatches));
  }

  const std::int64_t scrubbed = eng.scrub(rep);
  eng.mvm_batch(x.data(), batch, y.data());
  rep = eng.take_abft_report();
  const bool exact = std::memcmp(y.data(), y_ok.data(), y.size() * sizeof(float)) == 0;
  std::printf("scrubbed %lld tiles -> %lld stuck cells remain, next batch %s, "
              "readout %s pristine\n\n",
              static_cast<long long>(scrubbed), static_cast<long long>(eng.stuck_cells()),
              rep.clean() ? "clean" : "still ringing",
              exact ? "bit-exact vs" : "differs from (an undetected tile survived)");
}

void act2_fleet() {
  using namespace ftpim::serve;
  const int total_requests = env_int("FTPIM_REQS", 384);

  SynthVisionConfig data_cfg;
  data_cfg.num_classes = 10;
  data_cfg.image_size = 16;
  data_cfg.samples = env_int("FTPIM_TRAIN", 1024);
  const auto train = make_synthvision(data_cfg, 1);
  data_cfg.samples = env_int("FTPIM_TEST", 256);
  const auto test = make_synthvision(data_cfg, 2);

  SmallCnnConfig model_cfg;
  model_cfg.image_size = 16;
  auto model = make_small_cnn(model_cfg);
  TrainConfig tc;
  tc.epochs = env_int("FTPIM_EPOCHS", 3);
  Trainer(*model, *train, tc).run();

  ServerConfig cfg;
  cfg.queue_capacity = 512;
  cfg.batching.max_batch_size = 8;
  cfg.batching.max_linger_ns = 500'000;
  cfg.pool.num_replicas = env_int("FTPIM_REPLICAS", 2);
  cfg.pool.p_sa = 0.01;  // manufacturing defects: baselined away, never ring
  cfg.pool.seed = 7;
  cfg.pool.engine = ReplicaEngine::kQuantized;
  cfg.pool.quantized.abft.enabled = true;
  // Wear model: every 8 served batches, 0.5% of surviving cells fail. Aging
  // faults are post-baseline, so checksums flag them within one batch.
  cfg.aging.p_new_per_interval = 0.005;
  cfg.aging.interval_batches = 8;
  cfg.aging.seed = 99;
  // Scrub transient damage up to 3 consecutive flagged batches, then give
  // up and quarantine; aging damage re-applies after each scrub, so worn
  // replicas march through the ladder to a full repair.
  cfg.health.scrub_on_detection = true;
  cfg.health.max_scrub_retries = 3;
  cfg.health.canary_every_batches = 16;
  cfg.health.canary_samples = 8;
  cfg.health.repair_on_quarantine = true;

  std::printf("=== act 2: %d quantized replicas, checksums armed, aging in service ===\n",
              cfg.pool.num_replicas);
  InferenceServer server(*model, cfg);
  server.start();

  std::vector<std::future<InferenceResult>> futures;
  futures.reserve(static_cast<std::size_t>(total_requests));
  for (int i = 0; i < total_requests; ++i) {
    futures.push_back(server.submit(test->get(i % test->size()).image));
  }
  std::int64_t correct = 0;
  for (int i = 0; i < total_requests; ++i) {
    if (futures[static_cast<std::size_t>(i)].get().predicted ==
        test->get(i % test->size()).label) {
      ++correct;
    }
  }
  server.drain();
  server.stop();

  const ServerStats stats = server.stats();
  std::printf("served accuracy %.2f%% over %d requests\n",
              100.0 * static_cast<double>(correct) / total_requests, total_requests);
  std::printf("%s\n%s\n", stats.summary_line().c_str(), stats.health_line().c_str());
}

}  // namespace

int main() {
  act1_single_engine();
  act2_fleet();
  return 0;
}
