// Self-healing fleet demo: deadlines, retry/failover, canary health checks,
// in-service defect aging, and automatic repair.
//
// Trains a SmallCNN, then serves synthetic traffic on a fleet whose ReRAM
// replicas wear out as they serve (new stuck-at faults accumulate per served
// batch). Every few batches each worker runs a known-answer canary batch
// against golden outputs from the pristine source model; when a replica's
// rolling success rate drops below the quarantine threshold it is repaired —
// re-cloned from the source with a fresh defect map — and returns to duty.
// Requests carry deadlines and a 2-attempt budget, so a batch lost to a
// failing replica fails over to a healthy one instead of surfacing an error.
#include <cstdio>
#include <future>
#include <vector>

#include "src/common/config.hpp"
#include "src/core/evaluator.hpp"
#include "src/core/trainer.hpp"
#include "src/data/synthetic.hpp"
#include "src/models/small_cnn.hpp"
#include "src/serve/inference_server.hpp"
#include "src/serve/serve_error.hpp"

int main() {
  using namespace ftpim;
  using namespace ftpim::serve;

  const int replicas = env_int("FTPIM_REPLICAS", 2);
  const int total_requests = env_int("FTPIM_REQS", 768);

  SynthVisionConfig data_cfg;
  data_cfg.num_classes = 10;
  data_cfg.image_size = 16;
  data_cfg.samples = env_int("FTPIM_TRAIN", 1024);
  const auto train = make_synthvision(data_cfg, 1);
  data_cfg.samples = env_int("FTPIM_TEST", 512);
  const auto test = make_synthvision(data_cfg, 2);

  SmallCnnConfig model_cfg;
  model_cfg.image_size = 16;
  auto model = make_small_cnn(model_cfg);
  TrainConfig tc;
  tc.epochs = env_int("FTPIM_EPOCHS", 4);
  Trainer(*model, *train, tc).run();
  std::printf("factory model accuracy (no defects): %.2f%%\n",
              evaluate_accuracy(*model, *test) * 100.0);

  ServerConfig cfg;
  cfg.queue_capacity = 512;
  cfg.batching.max_batch_size = 8;
  cfg.batching.max_linger_ns = 500'000;
  cfg.pool.num_replicas = replicas;
  cfg.pool.p_sa = 0.01;  // factory defect rate at ship time
  cfg.pool.seed = 7;
  // Wear model: every 16 served batches, 1% of the surviving cells fail.
  cfg.aging.p_new_per_interval = 0.01;
  cfg.aging.interval_batches = 16;
  cfg.aging.seed = 99;
  // Health policy: canary every 8 batches, quarantine+repair below 85%.
  cfg.health.canary_every_batches = 8;
  cfg.health.canary_samples = 8;
  cfg.health.window = 32;
  cfg.health.min_samples = 8;
  cfg.health.quarantine_below = 0.85;
  cfg.health.repair_on_quarantine = true;
  // Reliability policy: 50ms deadline, one failover attempt.
  cfg.default_deadline_ns = 50'000'000;
  cfg.max_attempts = 2;
  InferenceServer server(*model, cfg);
  server.start();

  std::vector<std::future<InferenceResult>> futures;
  futures.reserve(static_cast<std::size_t>(total_requests));
  for (int i = 0; i < total_requests; ++i) {
    futures.push_back(server.submit(test->get(i % test->size()).image));
  }

  std::int64_t ok = 0, correct = 0;
  std::vector<std::int64_t> errors_by_kind(5, 0);
  for (int i = 0; i < total_requests; ++i) {
    try {
      const InferenceResult res = futures[static_cast<std::size_t>(i)].get();
      ++ok;
      if (res.predicted == test->get(i % test->size()).label) ++correct;
    } catch (const ServeError& e) {
      ++errors_by_kind[static_cast<std::size_t>(e.kind())];
    }
  }
  server.drain();
  server.stop();

  const ServerStats stats = server.stats();
  std::printf("\nanswered %lld/%d requests", static_cast<long long>(ok), total_requests);
  if (ok > 0) {
    std::printf(" | served accuracy %.2f%%",
                100.0 * static_cast<double>(correct) / static_cast<double>(ok));
  }
  std::printf("\n");
  for (std::size_t k = 0; k < errors_by_kind.size(); ++k) {
    if (errors_by_kind[k] > 0) {
      std::printf("  %s: %lld\n", to_string(static_cast<ServeError::Kind>(k)),
                  static_cast<long long>(errors_by_kind[k]));
    }
  }
  std::printf("%s\n%s\n", stats.summary_line().c_str(), stats.health_line().c_str());
  return 0;
}
