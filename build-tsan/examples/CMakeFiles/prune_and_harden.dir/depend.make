# Empty dependencies file for prune_and_harden.
# This may be replaced when dependencies are built.
