file(REMOVE_RECURSE
  "CMakeFiles/prune_and_harden.dir/prune_and_harden.cpp.o"
  "CMakeFiles/prune_and_harden.dir/prune_and_harden.cpp.o.d"
  "prune_and_harden"
  "prune_and_harden.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prune_and_harden.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
