file(REMOVE_RECURSE
  "CMakeFiles/device_lottery.dir/device_lottery.cpp.o"
  "CMakeFiles/device_lottery.dir/device_lottery.cpp.o.d"
  "device_lottery"
  "device_lottery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_lottery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
