# Empty compiler generated dependencies file for device_lottery.
# This may be replaced when dependencies are built.
