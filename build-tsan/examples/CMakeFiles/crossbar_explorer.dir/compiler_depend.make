# Empty compiler generated dependencies file for crossbar_explorer.
# This may be replaced when dependencies are built.
