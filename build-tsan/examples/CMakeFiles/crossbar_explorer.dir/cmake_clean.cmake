file(REMOVE_RECURSE
  "CMakeFiles/crossbar_explorer.dir/crossbar_explorer.cpp.o"
  "CMakeFiles/crossbar_explorer.dir/crossbar_explorer.cpp.o.d"
  "crossbar_explorer"
  "crossbar_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crossbar_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
