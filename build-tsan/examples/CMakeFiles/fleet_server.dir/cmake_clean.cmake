file(REMOVE_RECURSE
  "CMakeFiles/fleet_server.dir/fleet_server.cpp.o"
  "CMakeFiles/fleet_server.dir/fleet_server.cpp.o.d"
  "fleet_server"
  "fleet_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
