# Empty compiler generated dependencies file for fleet_server.
# This may be replaced when dependencies are built.
