file(REMOVE_RECURSE
  "CMakeFiles/self_healing_fleet.dir/self_healing_fleet.cpp.o"
  "CMakeFiles/self_healing_fleet.dir/self_healing_fleet.cpp.o.d"
  "self_healing_fleet"
  "self_healing_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/self_healing_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
