# Empty dependencies file for self_healing_fleet.
# This may be replaced when dependencies are built.
