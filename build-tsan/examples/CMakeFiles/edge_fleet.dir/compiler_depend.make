# Empty compiler generated dependencies file for edge_fleet.
# This may be replaced when dependencies are built.
