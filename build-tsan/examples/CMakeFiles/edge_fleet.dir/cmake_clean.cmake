file(REMOVE_RECURSE
  "CMakeFiles/edge_fleet.dir/edge_fleet.cpp.o"
  "CMakeFiles/edge_fleet.dir/edge_fleet.cpp.o.d"
  "edge_fleet"
  "edge_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
