
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/adam_dropout_stats_test.cpp" "tests/CMakeFiles/ftpim_tests.dir/adam_dropout_stats_test.cpp.o" "gcc" "tests/CMakeFiles/ftpim_tests.dir/adam_dropout_stats_test.cpp.o.d"
  "/root/repo/tests/aging_test.cpp" "tests/CMakeFiles/ftpim_tests.dir/aging_test.cpp.o" "gcc" "tests/CMakeFiles/ftpim_tests.dir/aging_test.cpp.o.d"
  "/root/repo/tests/bench_helpers_test.cpp" "tests/CMakeFiles/ftpim_tests.dir/bench_helpers_test.cpp.o" "gcc" "tests/CMakeFiles/ftpim_tests.dir/bench_helpers_test.cpp.o.d"
  "/root/repo/tests/check_test.cpp" "tests/CMakeFiles/ftpim_tests.dir/check_test.cpp.o" "gcc" "tests/CMakeFiles/ftpim_tests.dir/check_test.cpp.o.d"
  "/root/repo/tests/checkpoint_test.cpp" "tests/CMakeFiles/ftpim_tests.dir/checkpoint_test.cpp.o" "gcc" "tests/CMakeFiles/ftpim_tests.dir/checkpoint_test.cpp.o.d"
  "/root/repo/tests/cifar_loader_test.cpp" "tests/CMakeFiles/ftpim_tests.dir/cifar_loader_test.cpp.o" "gcc" "tests/CMakeFiles/ftpim_tests.dir/cifar_loader_test.cpp.o.d"
  "/root/repo/tests/clone_eval_test.cpp" "tests/CMakeFiles/ftpim_tests.dir/clone_eval_test.cpp.o" "gcc" "tests/CMakeFiles/ftpim_tests.dir/clone_eval_test.cpp.o.d"
  "/root/repo/tests/crossbar_engine_test.cpp" "tests/CMakeFiles/ftpim_tests.dir/crossbar_engine_test.cpp.o" "gcc" "tests/CMakeFiles/ftpim_tests.dir/crossbar_engine_test.cpp.o.d"
  "/root/repo/tests/crossbar_test.cpp" "tests/CMakeFiles/ftpim_tests.dir/crossbar_test.cpp.o" "gcc" "tests/CMakeFiles/ftpim_tests.dir/crossbar_test.cpp.o.d"
  "/root/repo/tests/data_test.cpp" "tests/CMakeFiles/ftpim_tests.dir/data_test.cpp.o" "gcc" "tests/CMakeFiles/ftpim_tests.dir/data_test.cpp.o.d"
  "/root/repo/tests/device_specific_test.cpp" "tests/CMakeFiles/ftpim_tests.dir/device_specific_test.cpp.o" "gcc" "tests/CMakeFiles/ftpim_tests.dir/device_specific_test.cpp.o.d"
  "/root/repo/tests/experiment_test.cpp" "tests/CMakeFiles/ftpim_tests.dir/experiment_test.cpp.o" "gcc" "tests/CMakeFiles/ftpim_tests.dir/experiment_test.cpp.o.d"
  "/root/repo/tests/fault_injector_test.cpp" "tests/CMakeFiles/ftpim_tests.dir/fault_injector_test.cpp.o" "gcc" "tests/CMakeFiles/ftpim_tests.dir/fault_injector_test.cpp.o.d"
  "/root/repo/tests/fault_model_test.cpp" "tests/CMakeFiles/ftpim_tests.dir/fault_model_test.cpp.o" "gcc" "tests/CMakeFiles/ftpim_tests.dir/fault_model_test.cpp.o.d"
  "/root/repo/tests/ft_trainer_test.cpp" "tests/CMakeFiles/ftpim_tests.dir/ft_trainer_test.cpp.o" "gcc" "tests/CMakeFiles/ftpim_tests.dir/ft_trainer_test.cpp.o.d"
  "/root/repo/tests/gemm_kernel_test.cpp" "tests/CMakeFiles/ftpim_tests.dir/gemm_kernel_test.cpp.o" "gcc" "tests/CMakeFiles/ftpim_tests.dir/gemm_kernel_test.cpp.o.d"
  "/root/repo/tests/gemm_test.cpp" "tests/CMakeFiles/ftpim_tests.dir/gemm_test.cpp.o" "gcc" "tests/CMakeFiles/ftpim_tests.dir/gemm_test.cpp.o.d"
  "/root/repo/tests/grad_property_test.cpp" "tests/CMakeFiles/ftpim_tests.dir/grad_property_test.cpp.o" "gcc" "tests/CMakeFiles/ftpim_tests.dir/grad_property_test.cpp.o.d"
  "/root/repo/tests/im2col_test.cpp" "tests/CMakeFiles/ftpim_tests.dir/im2col_test.cpp.o" "gcc" "tests/CMakeFiles/ftpim_tests.dir/im2col_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/ftpim_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/ftpim_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/latency_histogram_test.cpp" "tests/CMakeFiles/ftpim_tests.dir/latency_histogram_test.cpp.o" "gcc" "tests/CMakeFiles/ftpim_tests.dir/latency_histogram_test.cpp.o.d"
  "/root/repo/tests/logging_test.cpp" "tests/CMakeFiles/ftpim_tests.dir/logging_test.cpp.o" "gcc" "tests/CMakeFiles/ftpim_tests.dir/logging_test.cpp.o.d"
  "/root/repo/tests/loss_test.cpp" "tests/CMakeFiles/ftpim_tests.dir/loss_test.cpp.o" "gcc" "tests/CMakeFiles/ftpim_tests.dir/loss_test.cpp.o.d"
  "/root/repo/tests/misc_test.cpp" "tests/CMakeFiles/ftpim_tests.dir/misc_test.cpp.o" "gcc" "tests/CMakeFiles/ftpim_tests.dir/misc_test.cpp.o.d"
  "/root/repo/tests/models_test.cpp" "tests/CMakeFiles/ftpim_tests.dir/models_test.cpp.o" "gcc" "tests/CMakeFiles/ftpim_tests.dir/models_test.cpp.o.d"
  "/root/repo/tests/nn_layers_test.cpp" "tests/CMakeFiles/ftpim_tests.dir/nn_layers_test.cpp.o" "gcc" "tests/CMakeFiles/ftpim_tests.dir/nn_layers_test.cpp.o.d"
  "/root/repo/tests/optim_test.cpp" "tests/CMakeFiles/ftpim_tests.dir/optim_test.cpp.o" "gcc" "tests/CMakeFiles/ftpim_tests.dir/optim_test.cpp.o.d"
  "/root/repo/tests/parallel_test.cpp" "tests/CMakeFiles/ftpim_tests.dir/parallel_test.cpp.o" "gcc" "tests/CMakeFiles/ftpim_tests.dir/parallel_test.cpp.o.d"
  "/root/repo/tests/prune_test.cpp" "tests/CMakeFiles/ftpim_tests.dir/prune_test.cpp.o" "gcc" "tests/CMakeFiles/ftpim_tests.dir/prune_test.cpp.o.d"
  "/root/repo/tests/redundancy_test.cpp" "tests/CMakeFiles/ftpim_tests.dir/redundancy_test.cpp.o" "gcc" "tests/CMakeFiles/ftpim_tests.dir/redundancy_test.cpp.o.d"
  "/root/repo/tests/request_queue_test.cpp" "tests/CMakeFiles/ftpim_tests.dir/request_queue_test.cpp.o" "gcc" "tests/CMakeFiles/ftpim_tests.dir/request_queue_test.cpp.o.d"
  "/root/repo/tests/reram_conductance_test.cpp" "tests/CMakeFiles/ftpim_tests.dir/reram_conductance_test.cpp.o" "gcc" "tests/CMakeFiles/ftpim_tests.dir/reram_conductance_test.cpp.o.d"
  "/root/repo/tests/resume_test.cpp" "tests/CMakeFiles/ftpim_tests.dir/resume_test.cpp.o" "gcc" "tests/CMakeFiles/ftpim_tests.dir/resume_test.cpp.o.d"
  "/root/repo/tests/rng_test.cpp" "tests/CMakeFiles/ftpim_tests.dir/rng_test.cpp.o" "gcc" "tests/CMakeFiles/ftpim_tests.dir/rng_test.cpp.o.d"
  "/root/repo/tests/serialize_test.cpp" "tests/CMakeFiles/ftpim_tests.dir/serialize_test.cpp.o" "gcc" "tests/CMakeFiles/ftpim_tests.dir/serialize_test.cpp.o.d"
  "/root/repo/tests/serve_health_test.cpp" "tests/CMakeFiles/ftpim_tests.dir/serve_health_test.cpp.o" "gcc" "tests/CMakeFiles/ftpim_tests.dir/serve_health_test.cpp.o.d"
  "/root/repo/tests/serve_server_test.cpp" "tests/CMakeFiles/ftpim_tests.dir/serve_server_test.cpp.o" "gcc" "tests/CMakeFiles/ftpim_tests.dir/serve_server_test.cpp.o.d"
  "/root/repo/tests/stability_test.cpp" "tests/CMakeFiles/ftpim_tests.dir/stability_test.cpp.o" "gcc" "tests/CMakeFiles/ftpim_tests.dir/stability_test.cpp.o.d"
  "/root/repo/tests/table_printer_test.cpp" "tests/CMakeFiles/ftpim_tests.dir/table_printer_test.cpp.o" "gcc" "tests/CMakeFiles/ftpim_tests.dir/table_printer_test.cpp.o.d"
  "/root/repo/tests/tensor_test.cpp" "tests/CMakeFiles/ftpim_tests.dir/tensor_test.cpp.o" "gcc" "tests/CMakeFiles/ftpim_tests.dir/tensor_test.cpp.o.d"
  "/root/repo/tests/trainer_test.cpp" "tests/CMakeFiles/ftpim_tests.dir/trainer_test.cpp.o" "gcc" "tests/CMakeFiles/ftpim_tests.dir/trainer_test.cpp.o.d"
  "/root/repo/tests/training_extras_test.cpp" "tests/CMakeFiles/ftpim_tests.dir/training_extras_test.cpp.o" "gcc" "tests/CMakeFiles/ftpim_tests.dir/training_extras_test.cpp.o.d"
  "/root/repo/tests/variation_test.cpp" "tests/CMakeFiles/ftpim_tests.dir/variation_test.cpp.o" "gcc" "tests/CMakeFiles/ftpim_tests.dir/variation_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/ftpim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/serve/CMakeFiles/ftpim_serve.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
