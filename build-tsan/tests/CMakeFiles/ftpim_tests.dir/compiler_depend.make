# Empty compiler generated dependencies file for ftpim_tests.
# This may be replaced when dependencies are built.
