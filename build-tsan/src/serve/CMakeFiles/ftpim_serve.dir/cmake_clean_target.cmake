file(REMOVE_RECURSE
  "libftpim_serve.a"
)
