file(REMOVE_RECURSE
  "CMakeFiles/ftpim_serve.dir/health_monitor.cpp.o"
  "CMakeFiles/ftpim_serve.dir/health_monitor.cpp.o.d"
  "CMakeFiles/ftpim_serve.dir/inference_server.cpp.o"
  "CMakeFiles/ftpim_serve.dir/inference_server.cpp.o.d"
  "CMakeFiles/ftpim_serve.dir/replica_pool.cpp.o"
  "CMakeFiles/ftpim_serve.dir/replica_pool.cpp.o.d"
  "CMakeFiles/ftpim_serve.dir/request_queue.cpp.o"
  "CMakeFiles/ftpim_serve.dir/request_queue.cpp.o.d"
  "libftpim_serve.a"
  "libftpim_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftpim_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
