
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/serve/health_monitor.cpp" "src/serve/CMakeFiles/ftpim_serve.dir/health_monitor.cpp.o" "gcc" "src/serve/CMakeFiles/ftpim_serve.dir/health_monitor.cpp.o.d"
  "/root/repo/src/serve/inference_server.cpp" "src/serve/CMakeFiles/ftpim_serve.dir/inference_server.cpp.o" "gcc" "src/serve/CMakeFiles/ftpim_serve.dir/inference_server.cpp.o.d"
  "/root/repo/src/serve/replica_pool.cpp" "src/serve/CMakeFiles/ftpim_serve.dir/replica_pool.cpp.o" "gcc" "src/serve/CMakeFiles/ftpim_serve.dir/replica_pool.cpp.o.d"
  "/root/repo/src/serve/request_queue.cpp" "src/serve/CMakeFiles/ftpim_serve.dir/request_queue.cpp.o" "gcc" "src/serve/CMakeFiles/ftpim_serve.dir/request_queue.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/ftpim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
