# Empty compiler generated dependencies file for ftpim_serve.
# This may be replaced when dependencies are built.
