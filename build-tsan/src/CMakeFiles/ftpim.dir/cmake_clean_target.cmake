file(REMOVE_RECURSE
  "libftpim.a"
)
