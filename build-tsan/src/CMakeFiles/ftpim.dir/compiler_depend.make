# Empty compiler generated dependencies file for ftpim.
# This may be replaced when dependencies are built.
