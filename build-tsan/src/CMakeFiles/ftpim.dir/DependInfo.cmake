
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/atomic_file.cpp" "src/CMakeFiles/ftpim.dir/common/atomic_file.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/common/atomic_file.cpp.o.d"
  "/root/repo/src/common/check.cpp" "src/CMakeFiles/ftpim.dir/common/check.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/common/check.cpp.o.d"
  "/root/repo/src/common/checkpoint.cpp" "src/CMakeFiles/ftpim.dir/common/checkpoint.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/common/checkpoint.cpp.o.d"
  "/root/repo/src/common/config.cpp" "src/CMakeFiles/ftpim.dir/common/config.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/common/config.cpp.o.d"
  "/root/repo/src/common/crc32c.cpp" "src/CMakeFiles/ftpim.dir/common/crc32c.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/common/crc32c.cpp.o.d"
  "/root/repo/src/common/logging.cpp" "src/CMakeFiles/ftpim.dir/common/logging.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/common/logging.cpp.o.d"
  "/root/repo/src/common/parallel.cpp" "src/CMakeFiles/ftpim.dir/common/parallel.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/common/parallel.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/ftpim.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/common/rng.cpp.o.d"
  "/root/repo/src/common/serialize.cpp" "src/CMakeFiles/ftpim.dir/common/serialize.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/common/serialize.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/ftpim.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/common/stats.cpp.o.d"
  "/root/repo/src/core/device_specific.cpp" "src/CMakeFiles/ftpim.dir/core/device_specific.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/core/device_specific.cpp.o.d"
  "/root/repo/src/core/evaluator.cpp" "src/CMakeFiles/ftpim.dir/core/evaluator.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/core/evaluator.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/CMakeFiles/ftpim.dir/core/experiment.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/core/experiment.cpp.o.d"
  "/root/repo/src/core/ft_trainer.cpp" "src/CMakeFiles/ftpim.dir/core/ft_trainer.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/core/ft_trainer.cpp.o.d"
  "/root/repo/src/core/stability.cpp" "src/CMakeFiles/ftpim.dir/core/stability.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/core/stability.cpp.o.d"
  "/root/repo/src/core/table_printer.cpp" "src/CMakeFiles/ftpim.dir/core/table_printer.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/core/table_printer.cpp.o.d"
  "/root/repo/src/core/train_checkpoint.cpp" "src/CMakeFiles/ftpim.dir/core/train_checkpoint.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/core/train_checkpoint.cpp.o.d"
  "/root/repo/src/core/trainer.cpp" "src/CMakeFiles/ftpim.dir/core/trainer.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/core/trainer.cpp.o.d"
  "/root/repo/src/data/augment.cpp" "src/CMakeFiles/ftpim.dir/data/augment.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/data/augment.cpp.o.d"
  "/root/repo/src/data/cifar_loader.cpp" "src/CMakeFiles/ftpim.dir/data/cifar_loader.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/data/cifar_loader.cpp.o.d"
  "/root/repo/src/data/dataloader.cpp" "src/CMakeFiles/ftpim.dir/data/dataloader.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/data/dataloader.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "src/CMakeFiles/ftpim.dir/data/dataset.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/data/dataset.cpp.o.d"
  "/root/repo/src/data/synthetic.cpp" "src/CMakeFiles/ftpim.dir/data/synthetic.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/data/synthetic.cpp.o.d"
  "/root/repo/src/models/mlp.cpp" "src/CMakeFiles/ftpim.dir/models/mlp.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/models/mlp.cpp.o.d"
  "/root/repo/src/models/resnet.cpp" "src/CMakeFiles/ftpim.dir/models/resnet.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/models/resnet.cpp.o.d"
  "/root/repo/src/models/small_cnn.cpp" "src/CMakeFiles/ftpim.dir/models/small_cnn.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/models/small_cnn.cpp.o.d"
  "/root/repo/src/nn/activations.cpp" "src/CMakeFiles/ftpim.dir/nn/activations.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/nn/activations.cpp.o.d"
  "/root/repo/src/nn/batchnorm2d.cpp" "src/CMakeFiles/ftpim.dir/nn/batchnorm2d.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/nn/batchnorm2d.cpp.o.d"
  "/root/repo/src/nn/conv2d.cpp" "src/CMakeFiles/ftpim.dir/nn/conv2d.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/nn/conv2d.cpp.o.d"
  "/root/repo/src/nn/dropout.cpp" "src/CMakeFiles/ftpim.dir/nn/dropout.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/nn/dropout.cpp.o.d"
  "/root/repo/src/nn/init.cpp" "src/CMakeFiles/ftpim.dir/nn/init.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/nn/init.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/CMakeFiles/ftpim.dir/nn/linear.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/nn/linear.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/CMakeFiles/ftpim.dir/nn/loss.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/nn/loss.cpp.o.d"
  "/root/repo/src/nn/module.cpp" "src/CMakeFiles/ftpim.dir/nn/module.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/nn/module.cpp.o.d"
  "/root/repo/src/nn/pooling.cpp" "src/CMakeFiles/ftpim.dir/nn/pooling.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/nn/pooling.cpp.o.d"
  "/root/repo/src/nn/residual.cpp" "src/CMakeFiles/ftpim.dir/nn/residual.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/nn/residual.cpp.o.d"
  "/root/repo/src/nn/sequential.cpp" "src/CMakeFiles/ftpim.dir/nn/sequential.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/nn/sequential.cpp.o.d"
  "/root/repo/src/optim/adam.cpp" "src/CMakeFiles/ftpim.dir/optim/adam.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/optim/adam.cpp.o.d"
  "/root/repo/src/optim/lr_scheduler.cpp" "src/CMakeFiles/ftpim.dir/optim/lr_scheduler.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/optim/lr_scheduler.cpp.o.d"
  "/root/repo/src/optim/sgd.cpp" "src/CMakeFiles/ftpim.dir/optim/sgd.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/optim/sgd.cpp.o.d"
  "/root/repo/src/prune/admm_pruner.cpp" "src/CMakeFiles/ftpim.dir/prune/admm_pruner.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/prune/admm_pruner.cpp.o.d"
  "/root/repo/src/prune/magnitude_pruner.cpp" "src/CMakeFiles/ftpim.dir/prune/magnitude_pruner.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/prune/magnitude_pruner.cpp.o.d"
  "/root/repo/src/prune/sparsity.cpp" "src/CMakeFiles/ftpim.dir/prune/sparsity.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/prune/sparsity.cpp.o.d"
  "/root/repo/src/reram/aging.cpp" "src/CMakeFiles/ftpim.dir/reram/aging.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/reram/aging.cpp.o.d"
  "/root/repo/src/reram/conductance.cpp" "src/CMakeFiles/ftpim.dir/reram/conductance.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/reram/conductance.cpp.o.d"
  "/root/repo/src/reram/crossbar.cpp" "src/CMakeFiles/ftpim.dir/reram/crossbar.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/reram/crossbar.cpp.o.d"
  "/root/repo/src/reram/crossbar_engine.cpp" "src/CMakeFiles/ftpim.dir/reram/crossbar_engine.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/reram/crossbar_engine.cpp.o.d"
  "/root/repo/src/reram/defect_map.cpp" "src/CMakeFiles/ftpim.dir/reram/defect_map.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/reram/defect_map.cpp.o.d"
  "/root/repo/src/reram/fault_injector.cpp" "src/CMakeFiles/ftpim.dir/reram/fault_injector.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/reram/fault_injector.cpp.o.d"
  "/root/repo/src/reram/fault_model.cpp" "src/CMakeFiles/ftpim.dir/reram/fault_model.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/reram/fault_model.cpp.o.d"
  "/root/repo/src/reram/quantizer.cpp" "src/CMakeFiles/ftpim.dir/reram/quantizer.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/reram/quantizer.cpp.o.d"
  "/root/repo/src/reram/redundancy.cpp" "src/CMakeFiles/ftpim.dir/reram/redundancy.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/reram/redundancy.cpp.o.d"
  "/root/repo/src/reram/variation.cpp" "src/CMakeFiles/ftpim.dir/reram/variation.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/reram/variation.cpp.o.d"
  "/root/repo/src/tensor/gemm.cpp" "src/CMakeFiles/ftpim.dir/tensor/gemm.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/tensor/gemm.cpp.o.d"
  "/root/repo/src/tensor/im2col.cpp" "src/CMakeFiles/ftpim.dir/tensor/im2col.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/tensor/im2col.cpp.o.d"
  "/root/repo/src/tensor/kernels/conv_kernels.cpp" "src/CMakeFiles/ftpim.dir/tensor/kernels/conv_kernels.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/tensor/kernels/conv_kernels.cpp.o.d"
  "/root/repo/src/tensor/kernels/dispatch.cpp" "src/CMakeFiles/ftpim.dir/tensor/kernels/dispatch.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/tensor/kernels/dispatch.cpp.o.d"
  "/root/repo/src/tensor/kernels/gemm_driver.cpp" "src/CMakeFiles/ftpim.dir/tensor/kernels/gemm_driver.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/tensor/kernels/gemm_driver.cpp.o.d"
  "/root/repo/src/tensor/kernels/microkernel_avx2.cpp" "src/CMakeFiles/ftpim.dir/tensor/kernels/microkernel_avx2.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/tensor/kernels/microkernel_avx2.cpp.o.d"
  "/root/repo/src/tensor/kernels/microkernel_scalar.cpp" "src/CMakeFiles/ftpim.dir/tensor/kernels/microkernel_scalar.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/tensor/kernels/microkernel_scalar.cpp.o.d"
  "/root/repo/src/tensor/kernels/pack.cpp" "src/CMakeFiles/ftpim.dir/tensor/kernels/pack.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/tensor/kernels/pack.cpp.o.d"
  "/root/repo/src/tensor/kernels/pack_arena.cpp" "src/CMakeFiles/ftpim.dir/tensor/kernels/pack_arena.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/tensor/kernels/pack_arena.cpp.o.d"
  "/root/repo/src/tensor/tensor.cpp" "src/CMakeFiles/ftpim.dir/tensor/tensor.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/tensor/tensor.cpp.o.d"
  "/root/repo/src/tensor/tensor_ops.cpp" "src/CMakeFiles/ftpim.dir/tensor/tensor_ops.cpp.o" "gcc" "src/CMakeFiles/ftpim.dir/tensor/tensor_ops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
