file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_redundancy.dir/bench_ablation_redundancy.cpp.o"
  "CMakeFiles/bench_ablation_redundancy.dir/bench_ablation_redundancy.cpp.o.d"
  "bench_ablation_redundancy"
  "bench_ablation_redundancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_redundancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
