# Empty dependencies file for bench_ablation_redundancy.
# This may be replaced when dependencies are built.
