file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_c100.dir/bench_table1_c100.cpp.o"
  "CMakeFiles/bench_table1_c100.dir/bench_table1_c100.cpp.o.d"
  "bench_table1_c100"
  "bench_table1_c100.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_c100.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
