# Empty compiler generated dependencies file for bench_table1_c100.
# This may be replaced when dependencies are built.
