file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_ss.dir/bench_table2_ss.cpp.o"
  "CMakeFiles/bench_table2_ss.dir/bench_table2_ss.cpp.o.d"
  "bench_table2_ss"
  "bench_table2_ss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_ss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
