# Empty dependencies file for bench_serve_degradation.
# This may be replaced when dependencies are built.
