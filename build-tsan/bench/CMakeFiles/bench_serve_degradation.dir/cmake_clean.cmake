file(REMOVE_RECURSE
  "CMakeFiles/bench_serve_degradation.dir/bench_serve_degradation.cpp.o"
  "CMakeFiles/bench_serve_degradation.dir/bench_serve_degradation.cpp.o.d"
  "bench_serve_degradation"
  "bench_serve_degradation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_serve_degradation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
