file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_pruning.dir/bench_fig2_pruning.cpp.o"
  "CMakeFiles/bench_fig2_pruning.dir/bench_fig2_pruning.cpp.o.d"
  "bench_fig2_pruning"
  "bench_fig2_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
