file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_c10.dir/bench_table1_c10.cpp.o"
  "CMakeFiles/bench_table1_c10.dir/bench_table1_c10.cpp.o.d"
  "bench_table1_c10"
  "bench_table1_c10.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_c10.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
