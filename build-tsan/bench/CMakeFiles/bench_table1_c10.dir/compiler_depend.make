# Empty compiler generated dependencies file for bench_table1_c10.
# This may be replaced when dependencies are built.
