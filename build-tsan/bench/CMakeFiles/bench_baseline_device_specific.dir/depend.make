# Empty dependencies file for bench_baseline_device_specific.
# This may be replaced when dependencies are built.
