file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_device_specific.dir/bench_baseline_device_specific.cpp.o"
  "CMakeFiles/bench_baseline_device_specific.dir/bench_baseline_device_specific.cpp.o.d"
  "bench_baseline_device_specific"
  "bench_baseline_device_specific.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_device_specific.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
