# Empty dependencies file for bench_ablation_saf_ratio.
# This may be replaced when dependencies are built.
