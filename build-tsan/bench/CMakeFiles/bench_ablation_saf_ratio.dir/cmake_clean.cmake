file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_saf_ratio.dir/bench_ablation_saf_ratio.cpp.o"
  "CMakeFiles/bench_ablation_saf_ratio.dir/bench_ablation_saf_ratio.cpp.o.d"
  "bench_ablation_saf_ratio"
  "bench_ablation_saf_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_saf_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
