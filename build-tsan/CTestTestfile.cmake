# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build-tsan
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(lint.tree "/root/.pyenv/shims/python3" "/root/repo/tools/ftpim_lint.py" "--root" "/root/repo")
set_tests_properties(lint.tree PROPERTIES  LABELS "lint" TIMEOUT "60" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;91;add_test;/root/repo/CMakeLists.txt;0;")
add_test(lint.selftest "/root/.pyenv/shims/python3" "/root/repo/tools/ftpim_lint.py" "--self-test")
set_tests_properties(lint.selftest PROPERTIES  LABELS "lint" TIMEOUT "60" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;94;add_test;/root/repo/CMakeLists.txt;0;")
subdirs("src")
subdirs("tests")
subdirs("bench")
subdirs("examples")
