#!/usr/bin/env bash
# Local CI matrix for ftpim: builds every target (library, tests, benches,
# examples) and runs ctest under each configuration:
#
#   analyze    no build: the semantic analyzer (tools/ftpim_analyze.py) over
#              the tree (layering, hot-path audit, exception surface) plus its
#              fixture self-test; writes a JSON findings artifact
#   default    plain Release build, full suite + determinism linter
#   scalar     same build tree as default, full suite with FTPIM_KERNEL=scalar
#              — keeps the portable micro-kernel (the fallback for non-AVX2
#              hosts) fully tested on AVX2 machines
#   address    ASan/LSan, full suite
#   undefined  UBSan (non-recovering), full suite
#   thread     TSan, concurrency-sensitive subset with FTPIM_THREADS=4
#   crash      debug-tier contracts ON, checkpoint/resume subset: the seeded
#              crash-injection sweep (every truncation offset and bit flip of
#              a checkpoint must be rejected with a typed CheckpointError)
#              plus kill/resume bit-equivalence at 1 and 4 threads
#
# Usage:
#   scripts/ci.sh             # run the whole matrix
#   scripts/ci.sh undefined   # run a single configuration
#
# Build trees live under build-ci/<config> so the developer build/ is never
# clobbered. Total runtime is dominated by the three sanitizer builds.
set -euo pipefail

REPO_ROOT="$(cd -- "$(dirname -- "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_ROOT="${REPO_ROOT}/build-ci"
JOBS="$(nproc 2>/dev/null || echo 4)"

# TSan-relevant subset: parallel_for machinery, the packed GEMM/conv kernel
# backend (worker-partitioned macro loops + thread-local pack arenas), module
# cloning, Monte-Carlo defect evaluation, fault-injection sessions, the
# serving layer's queue and worker threads, the quantized crossbar datapath
# (internally parallel mvm_batch + hooked eval forwards inside Monte-Carlo
# workers; Quant*/Qinfer* suites), the fleet simulator's parallel device
# fan-out (Fleet* suites, incl. thread-count-invariance checks), and the
# contract layer they all guard.
# Kept as a regex so newly added tests matching these names are picked up
# automatically. The quantized suites also run under the `scalar` leg
# (FTPIM_KERNEL=scalar, full suite), which keeps the portable int8 kernel
# exercised on AVX2 hosts.
THREAD_SUBSET='Parallel|Clone|Defect|Session|Eval|Check|Logging|Serve|Aging|Kernel|Gemm|Quant|Qinfer|Abft|Scrub|Fleet'

# Crash-safety subset: the container/CRC primitives, the seeded corruption
# sweep (CheckpointCrashInjection: truncation at every framing boundary plus
# deterministic bit flips, all of which must surface as typed CheckpointError),
# the Python inspector agreement tests, and kill/resume equivalence (training
# checkpoints via FtResume, fleet sweeps via FleetResume).
CRASH_SUBSET='Crc32c|AtomicFile|Checkpoint|ByteCodec|ReramCodec|CkptTool|FtResume|FleetResume|Serialize'

run_config() {
  # Optional 4th arg reuses another config's build tree (the scalar leg only
  # flips the runtime FTPIM_KERNEL dispatch, so rebuilding would be waste).
  local name="$1" cmake_args="$2" ctest_args="$3"
  local bdir="${BUILD_ROOT}/${4:-${name}}"
  echo "==> [${name}] configure"
  # shellcheck disable=SC2086  # cmake_args is a deliberate word list
  cmake -B "${bdir}" -S "${REPO_ROOT}" ${cmake_args}
  echo "==> [${name}] build (all targets, incl. bench/ and examples/)"
  cmake --build "${bdir}" -j "${JOBS}"
  echo "==> [${name}] ctest ${ctest_args}"
  # shellcheck disable=SC2086
  (cd "${bdir}" && ctest --output-on-failure -j "${JOBS}" ${ctest_args})
  echo "==> [${name}] OK"
}

run_analyze() {
  # Pure-Python leg: no configure/build. The JSON artifact lands next to the
  # build trees so CI uploads can grab findings even on a green run.
  local out_dir="${BUILD_ROOT}/analyze"
  mkdir -p "${out_dir}"
  echo "==> [analyze] tree"
  python3 "${REPO_ROOT}/tools/ftpim_analyze.py" --root "${REPO_ROOT}" \
      --json "${out_dir}/findings.json"
  echo "==> [analyze] selftest"
  python3 "${REPO_ROOT}/tools/ftpim_analyze.py" --self-test
  echo "==> [analyze] OK (artifact: ${out_dir}/findings.json)"
}

declare -A CMAKE_ARGS=(
  [analyze]=""
  [default]="-DFTPIM_WERROR=ON"
  [scalar]="-DFTPIM_WERROR=ON"
  [address]="-DFTPIM_SANITIZE=address"
  [undefined]="-DFTPIM_SANITIZE=undefined"
  [thread]="-DFTPIM_SANITIZE=thread"
  [crash]="-DFTPIM_WERROR=ON -DFTPIM_DCHECKS=ON"
)
declare -A CTEST_ARGS=(
  [analyze]=""
  [default]=""
  [scalar]="-E ^(lint|analyze)"
  [address]="-E ^(lint|analyze)"
  [undefined]="-E ^(lint|analyze)"
  [thread]="-R ${THREAD_SUBSET}"
  [crash]="-R ${CRASH_SUBSET}"
)

ORDER=(analyze default scalar address undefined thread crash)
if [[ $# -gt 0 ]]; then
  ORDER=("$@")
fi

for cfg in "${ORDER[@]}"; do
  if [[ -z "${CMAKE_ARGS[${cfg}]+x}" ]]; then
    echo "ci.sh: unknown config '${cfg}' (known: ${!CMAKE_ARGS[*]})" >&2
    exit 2
  fi
  if [[ "${cfg}" == "analyze" ]]; then
    run_analyze
  elif [[ "${cfg}" == "thread" ]]; then
    FTPIM_THREADS=4 run_config "${cfg}" "${CMAKE_ARGS[${cfg}]}" "${CTEST_ARGS[${cfg}]}"
  elif [[ "${cfg}" == "scalar" ]]; then
    FTPIM_KERNEL=scalar run_config "${cfg}" "${CMAKE_ARGS[${cfg}]}" "${CTEST_ARGS[${cfg}]}" default
  else
    run_config "${cfg}" "${CMAKE_ARGS[${cfg}]}" "${CTEST_ARGS[${cfg}]}"
  fi
done

echo "ci.sh: all configurations passed"
