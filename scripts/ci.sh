#!/usr/bin/env bash
# Local CI matrix for ftpim: builds every target (library, tests, benches,
# examples) and runs ctest under each configuration:
#
#   default    plain Release build, full suite + determinism linter
#   address    ASan/LSan, full suite
#   undefined  UBSan (non-recovering), full suite
#   thread     TSan, concurrency-sensitive subset with FTPIM_THREADS=4
#
# Usage:
#   scripts/ci.sh             # run the whole matrix
#   scripts/ci.sh undefined   # run a single configuration
#
# Build trees live under build-ci/<config> so the developer build/ is never
# clobbered. Total runtime is dominated by the three sanitizer builds.
set -euo pipefail

REPO_ROOT="$(cd -- "$(dirname -- "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_ROOT="${REPO_ROOT}/build-ci"
JOBS="$(nproc 2>/dev/null || echo 4)"

# TSan-relevant subset: parallel_for machinery, module cloning, Monte-Carlo
# defect evaluation, fault-injection sessions, the serving layer's queue and
# worker threads, and the contract layer they all guard. Kept as a regex so
# newly added tests matching these names are picked up automatically.
THREAD_SUBSET='Parallel|Clone|Defect|Session|Eval|Check|Logging|Serve|Aging'

run_config() {
  local name="$1" cmake_args="$2" ctest_args="$3"
  local bdir="${BUILD_ROOT}/${name}"
  echo "==> [${name}] configure"
  # shellcheck disable=SC2086  # cmake_args is a deliberate word list
  cmake -B "${bdir}" -S "${REPO_ROOT}" ${cmake_args}
  echo "==> [${name}] build (all targets, incl. bench/ and examples/)"
  cmake --build "${bdir}" -j "${JOBS}"
  echo "==> [${name}] ctest ${ctest_args}"
  # shellcheck disable=SC2086
  (cd "${bdir}" && ctest --output-on-failure -j "${JOBS}" ${ctest_args})
  echo "==> [${name}] OK"
}

declare -A CMAKE_ARGS=(
  [default]="-DFTPIM_WERROR=ON"
  [address]="-DFTPIM_SANITIZE=address"
  [undefined]="-DFTPIM_SANITIZE=undefined"
  [thread]="-DFTPIM_SANITIZE=thread"
)
declare -A CTEST_ARGS=(
  [default]=""
  [address]="-E ^lint"
  [undefined]="-E ^lint"
  [thread]="-R ${THREAD_SUBSET}"
)

ORDER=(default address undefined thread)
if [[ $# -gt 0 ]]; then
  ORDER=("$@")
fi

for cfg in "${ORDER[@]}"; do
  if [[ -z "${CMAKE_ARGS[${cfg}]+x}" ]]; then
    echo "ci.sh: unknown config '${cfg}' (known: ${!CMAKE_ARGS[*]})" >&2
    exit 2
  fi
  if [[ "${cfg}" == "thread" ]]; then
    FTPIM_THREADS=4 run_config "${cfg}" "${CMAKE_ARGS[${cfg}]}" "${CTEST_ARGS[${cfg}]}"
  else
    run_config "${cfg}" "${CMAKE_ARGS[${cfg}]}" "${CTEST_ARGS[${cfg}]}"
  fi
done

echo "ci.sh: all configurations passed"
