// Exception-surface fixture: a worker loop missing noexcept, a catch (...)
// that swallows the exception, and a destructor that throws.
#include "src/serve/api.hpp"

#include <stdexcept>

namespace fx {

struct BadServer {
  ~BadServer() { throw std::runtime_error("dtor"); }
};

void worker_loop(int replica) {
  try {
    (void)serve_api_version();
    (void)replica;
  } catch (...) {
  }
}

}  // namespace fx
