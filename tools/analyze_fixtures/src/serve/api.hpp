#pragma once

// Known-good serve-side provider: the back-edge fixture includes this from
// the tensor module (illegal), good_worker.cpp from serve (legal).

namespace fx {

inline int serve_api_version() { return 3; }

struct ServePromise {
  void set_value(int v);
  void set_exception(int code);
};

}  // namespace fx
