// Known-good fixture: noexcept worker loop, catch (...) that settles the
// promise, and a FTPIM_HOT function whose only expensive work lives behind
// an FTPIM_COLD boundary - traversal must stop there, so this file has zero
// findings.
#include "src/serve/api.hpp"

#include "src/common/base.hpp"

#include <vector>

namespace fx {

FTPIM_COLD void settle_failure(ServePromise& p, int code) {
  std::vector<int> trail;
  trail.push_back(code);
  p.set_exception(code);
}

FTPIM_HOT int hot_dispatch(ServePromise& p, int code) {
  if (code != 0) {
    settle_failure(p, code);
    return -1;
  }
  return serve_api_version();
}

void worker_loop(int replica) noexcept {
  ServePromise promise;
  try {
    (void)replica;
    promise.set_value(hot_dispatch(promise, 0));
  } catch (...) {
    promise.set_exception(-1);
  }
}

}  // namespace fx
