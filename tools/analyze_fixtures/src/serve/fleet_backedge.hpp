#pragma once

// Layering fixture: the serving layer (rank 6) must not reach up into the
// fleet simulator (rank 7) — a server cannot depend on the harness that
// sweeps it. This include is a back-edge.
#include "src/fleet/api.hpp"

namespace fx {

inline int serve_reaches_into_fleet() { return fleet_api_version(); }

}  // namespace fx
