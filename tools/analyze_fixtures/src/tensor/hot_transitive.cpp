// Transitive hot-path fixture: the FTPIM_HOT entry point is clean itself
// but calls a local helper that heap-allocates; the audit must follow the
// local call and flag the helper.
#include "src/common/base.hpp"

#include <memory>

namespace fx {

int* transitive_helper(int n) {
  auto owned = std::make_unique<int>(n);
  return owned.release();
}

FTPIM_HOT int hot_transitive_entry(int n) {
  int* p = transitive_helper(n);
  int v = *p;
  delete p;
  return v;
}

}  // namespace fx
