#pragma once

// Layering fixture: tensor (rank 1) reaching up into serve (rank 6) is a
// back-edge against the module DAG and must be rejected.
#include "src/serve/api.hpp"

namespace fx {

inline int tensor_uses_serve() { return serve_api_version(); }

}  // namespace fx
