// Hot-path audit fixture: a FTPIM_HOT function that heap-allocates, grows a
// vector, builds a std::string, acquires a lock, and reads the wall clock -
// one finding per rule.
#include "src/common/base.hpp"

#include <chrono>
#include <mutex>
#include <string>
#include <vector>

namespace fx {

std::mutex g_mu;

FTPIM_HOT float* hot_entry(std::vector<float>& buf, int n) {
  std::lock_guard<std::mutex> hold(g_mu);
  std::string label = "batch";
  const auto t0 = std::chrono::steady_clock::now();
  (void)t0;
  (void)label;
  buf.push_back(static_cast<float>(n));
  return new float[static_cast<unsigned>(n)];
}

}  // namespace fx
