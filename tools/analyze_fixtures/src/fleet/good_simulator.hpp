#pragma once

// Known-good: fleet (rank 7) sits ABOVE serve (rank 6) — the simulator
// drives serve-layer replica pools, so this downward include is the normal
// direction and must not fire layer-back-edge.
#include "src/serve/api.hpp"

namespace fx {

inline int fleet_drives_serve() { return serve_api_version(); }

}  // namespace fx
