#pragma once

// Known-good fleet-layer provider (rank 7, the top of the DAG). The serve
// back-edge fixture includes this from below (illegal); good_simulator.hpp
// includes serve from here (legal downward edge).

namespace fx {

inline int fleet_api_version() { return 1; }

}  // namespace fx
