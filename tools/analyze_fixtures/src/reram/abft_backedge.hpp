#pragma once

// Layering fixture: an ABFT detector living in reram (rank 3) must not
// reach up into serve (rank 6) to report — reports flow upward by being
// DRAINED from the engines, never pushed. This include is a back-edge.
#include "src/serve/api.hpp"

namespace fx {

inline int abft_reports_into_serve() { return serve_api_version(); }

}  // namespace fx
