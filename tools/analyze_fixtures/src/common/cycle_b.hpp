#pragma once

// Include-cycle fixture, half B: completes the A -> B -> A cycle.
#include "src/common/cycle_a.hpp"

namespace fx {

inline int cycle_b_value(int depth) {
  return depth <= 0 ? 2 : cycle_a_value(depth - 1) + 2;
}

}  // namespace fx
