#pragma once

// Include-cycle fixture, half A: depends on B which depends back on A.
#include "src/common/cycle_b.hpp"

namespace fx {

inline int cycle_a_value(int depth) {
  return depth <= 0 ? 1 : cycle_b_value(depth - 1) + 1;
}

}  // namespace fx
