#pragma once

// Known-good provider fixture: defines the tokens the other fixtures
// consume (including stand-ins for the real src/common/annotations.hpp
// macros, so hot fixtures read like production code).

#define FIXTURE_ANNOTATIONS_OK 1
#define FTPIM_HOT [[gnu::hot]]
#define FTPIM_COLD [[gnu::cold]]

namespace fx {

struct BaseThing {
  int value = 0;
};

inline int base_helper(int x) { return x + 1; }

}  // namespace fx
