// IWYU-lite fixture: includes a project header and a std header and uses a
// token from neither.
#include "src/common/base.hpp"

#include <vector>

namespace fx {

int standalone_sum(int a, int b) { return a + b; }

}  // namespace fx
