#!/usr/bin/env python3
"""ftpim determinism & hygiene linter.

Machine-checks the repo rules that keep the paper's Monte-Carlo fault
statistics reproducible (see DESIGN.md "Invariants & determinism rules"):

  rng-source            std::rand/srand/std::random_device/time() are banned
                        everywhere except src/common/rng.cpp — all randomness
                        must flow through the seeded ftpim::Rng streams.
  unordered-output      std::unordered_{map,set} are banned in the
                        serialization and table-rendering layers: iteration
                        order would leak hash-table layout into checkpoints
                        and printed tables.
  raw-stdout            std::cout / std::cerr / printf / puts are banned in
                        src/ — library code reports through the logging layer
                        (line-atomic, sink-capturable) or returns strings
                        (TablePrinter::render); only bench/, examples/ and
                        tests/ may print.
  pragma-once           every header carries #pragma once.
  assert-in-header      raw assert()/<cassert> is banned in headers — use
                        FTPIM_CHECK* / FTPIM_DCHECK* (src/common/check.hpp),
                        which throw a typed, testable ContractViolation.
  serve-wall-clock      std::chrono::*_clock::now() is banned in src/serve/
                        outside clock.hpp — serving code reads time through
                        the injectable ServeClock so deadline/linger tests
                        can drive a ManualServeClock deterministically.
  raw-file-write        std::ofstream / fopen-for-write are banned in src/
                        outside AtomicFileWriter and the log sink — a direct
                        write can be killed mid-file and leave a torn
                        artifact; durable files go through AtomicFileWriter
                        (src/common/atomic_file.hpp: temp + fsync + rename).
  simd-intrinsics       raw SIMD intrinsics (<immintrin.h>, _mm*/__m256...)
                        are banned in src/ outside src/tensor/kernels/ —
                        vector code lives behind the kernel backend's runtime
                        dispatch (FTPIM_KERNEL) so every algorithm keeps a
                        portable scalar path and the scalar/AVX2 pair stays
                        testable against each other.

Usage:
  ftpim_lint.py --root <repo>      lint the tree (exit 1 on any finding)
  ftpim_lint.py --self-test        run the rule engine against the known-bad
                                   fixtures in tools/lint_fixtures/ and fail
                                   unless every expected rule fires (and the
                                   known-good fixture stays clean)
Registered as ctest targets `lint.tree` and `lint.selftest`.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass

CODE_DIRS = ("src", "bench", "tests", "examples")
HEADER_EXT = (".hpp", ".h")
SOURCE_EXT = (".cpp", ".cc") + HEADER_EXT


@dataclass
class Finding:
    rule: str
    path: str
    line: int
    text: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.text}"


@dataclass
class Rule:
    name: str
    pattern: re.Pattern
    message: str
    # Relative-path predicates (posix separators, relative to the scan root).
    applies: "callable" = lambda rel: True
    allowed: "callable" = lambda rel: False


def _strip_comments(line: str) -> str:
    """Drops // comments so documentation may mention banned identifiers."""
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


def in_src(rel: str) -> bool:
    return rel.startswith("src/")


def is_header(rel: str) -> bool:
    return rel.endswith(HEADER_EXT)


def is_output_path_file(rel: str) -> bool:
    base = os.path.basename(rel)
    return base.startswith(("serialize", "table_printer"))


RULES = [
    Rule(
        name="rng-source",
        pattern=re.compile(
            r"\bstd::rand\b|\bsrand\s*\(|\brandom_device\b|(?<![\w.])time\s*\(\s*(?:NULL|nullptr|0|\))"
        ),
        message="nondeterministic randomness source; use the seeded ftpim::Rng "
        "(src/common/rng.hpp) so runs reproduce bit-for-bit",
        applies=in_src,
        allowed=lambda rel: rel == "src/common/rng.cpp",
    ),
    Rule(
        name="unordered-output",
        pattern=re.compile(r"\bstd::unordered_(?:map|set|multimap|multiset)\b|<unordered_map>|<unordered_set>"),
        message="unordered container in a serialization/rendering path; "
        "iteration order is hash-layout-dependent — use std::map/std::vector",
        applies=lambda rel: in_src(rel) and is_output_path_file(rel),
    ),
    Rule(
        name="raw-stdout",
        pattern=re.compile(r"\bstd::cout\b|\bstd::cerr\b|(?<![\w:])printf\s*\(|\bstd::puts\b|(?<![\w:])puts\s*\("),
        message="raw console output in library code; log through "
        "src/common/logging.hpp or return a string (TablePrinter::render)",
        applies=in_src,
        allowed=lambda rel: rel.startswith("src/common/logging."),
    ),
    Rule(
        name="assert-in-header",
        pattern=re.compile(r"(?<![\w_])assert\s*\(|<cassert>|\"cassert\""),
        message="raw assert in a header; use FTPIM_CHECK*/FTPIM_DCHECK* from "
        "src/common/check.hpp (typed, testable, Release-aware)",
        applies=lambda rel: in_src(rel) and is_header(rel),
    ),
    Rule(
        name="serve-wall-clock",
        pattern=re.compile(
            r"\bstd::chrono::(?:steady_clock|system_clock|high_resolution_clock)::now\s*\("
        ),
        message="direct wall-clock read in the serving layer; go through the "
        "injectable ServeClock (src/serve/clock.hpp) so deadline and linger "
        "behavior stays testable with ManualServeClock",
        applies=lambda rel: rel.startswith("src/serve/"),
        allowed=lambda rel: rel == "src/serve/clock.hpp",
    ),
    Rule(
        name="raw-file-write",
        pattern=re.compile(
            r"\bstd::ofstream\b|\bstd::fstream\b|(?<![\w:])ofstream\b|"
            r"\bfopen\s*\([^)\n]*\"[wa][b+t]*\""
        ),
        message="direct file write in library code; a crash mid-write leaves "
        "a torn file — write durable artifacts through AtomicFileWriter "
        "(src/common/atomic_file.hpp)",
        applies=in_src,
        allowed=lambda rel: rel == "src/common/atomic_file.cpp"
        or rel.startswith("src/common/logging."),
    ),
    Rule(
        name="simd-intrinsics",
        pattern=re.compile(
            r"<(?:immintrin|x86intrin|emmintrin|xmmintrin|smmintrin|avxintrin)\.h>|"
            r"\b_mm\d*_\w+|\b__m(?:128|256|512)[di]?\b"
        ),
        message="raw SIMD intrinsics outside the kernel backend; vector code "
        "lives in src/tensor/kernels/ behind the runtime dispatch "
        "(FTPIM_KERNEL) so every path keeps a portable scalar twin",
        applies=in_src,
        allowed=lambda rel: rel.startswith("src/tensor/kernels/"),
    ),
]

PRAGMA_ONCE_RULE = "pragma-once"


def iter_files(root: str):
    for top in CODE_DIRS:
        top_path = os.path.join(root, top)
        if not os.path.isdir(top_path):
            continue
        for dirpath, dirnames, filenames in os.walk(top_path):
            dirnames[:] = [d for d in dirnames if d not in ("CMakeFiles", ".git")]
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXT):
                    full = os.path.join(dirpath, name)
                    rel = os.path.relpath(full, root).replace(os.sep, "/")
                    yield full, rel


def lint_tree(root: str) -> list[Finding]:
    findings: list[Finding] = []
    for full, rel in iter_files(root):
        try:
            with open(full, encoding="utf-8", errors="replace") as fh:
                lines = fh.read().splitlines()
        except OSError as exc:
            findings.append(Finding("io-error", rel, 0, str(exc)))
            continue

        if rel.endswith(HEADER_EXT) and not any("#pragma once" in ln for ln in lines):
            findings.append(
                Finding(PRAGMA_ONCE_RULE, rel, 1, "header is missing #pragma once")
            )

        active = [r for r in RULES if r.applies(rel) and not r.allowed(rel)]
        if not active:
            continue
        for lineno, raw in enumerate(lines, start=1):
            code = _strip_comments(raw)
            if not code.strip():
                continue
            for rule in active:
                if rule.pattern.search(code):
                    findings.append(Finding(rule.name, rel, lineno, rule.message))
    return findings


def self_test(fixture_root: str) -> int:
    """The linter must flag every seeded violation and keep the good file clean."""
    findings = lint_tree(fixture_root)
    by_file: dict[str, set[str]] = {}
    for f in findings:
        by_file.setdefault(f.path, set()).add(f.rule)

    expected = {
        "src/bad/determinism_violations.cpp": {"rng-source", "raw-stdout"},
        "src/bad/bad_contract.hpp": {"assert-in-header", PRAGMA_ONCE_RULE},
        "src/common/serialize.cpp": {"unordered-output"},
        "src/serve/bad_wall_clock.cpp": {"serve-wall-clock"},
        "src/bad/raw_file_write.cpp": {"raw-file-write"},
        "src/bad/simd_leak.cpp": {"simd-intrinsics"},
    }
    good = "src/good/clean_module.hpp"

    failures = []
    for path, rules in expected.items():
        missing = rules - by_file.get(path, set())
        if missing:
            failures.append(f"expected rules {sorted(missing)} did not fire on {path}")
    if good in by_file:
        failures.append(f"known-good fixture {good} was flagged: {sorted(by_file[good])}")

    if failures:
        print("ftpim_lint self-test FAILED:")
        for msg in failures:
            print("  " + msg)
        print("\nall findings on the fixture tree:")
        for f in findings:
            print("  " + str(f))
        return 1
    print(
        f"ftpim_lint self-test OK: {len(findings)} finding(s) on the bad fixtures, "
        "known-good fixture clean"
    )
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".", help="repository root to lint")
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="lint tools/lint_fixtures/ and verify the known-bad files are flagged",
    )
    args = parser.parse_args()

    if args.self_test:
        fixture_root = os.path.join(os.path.dirname(os.path.abspath(__file__)), "lint_fixtures")
        return self_test(fixture_root)

    findings = lint_tree(args.root)
    if findings:
        print(f"ftpim_lint: {len(findings)} finding(s):")
        for f in findings:
            print("  " + str(f))
        return 1
    print("ftpim_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
