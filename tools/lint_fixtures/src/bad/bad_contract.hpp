// Lint fixture: header missing its include guard, using raw assert. NOT COMPILED.
#include <cassert>

inline int checked_index(int i, int n) {
  assert(i >= 0 && i < n);
  return i;
}
