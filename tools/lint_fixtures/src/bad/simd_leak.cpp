// Known-bad fixture: raw SIMD intrinsics outside src/tensor/kernels/.
// The simd-intrinsics rule must flag the include, the type, and the call.
#include <immintrin.h>

float bad_sum8(const float* p) {
  __m256 v = _mm256_loadu_ps(p);
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, v);
  float s = 0.0f;
  for (int i = 0; i < 8; ++i) s += lanes[i];
  return s;
}
