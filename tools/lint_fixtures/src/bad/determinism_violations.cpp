// Lint fixture: every line below violates a determinism rule. NOT COMPILED.
#include <cstdlib>
#include <ctime>
#include <iostream>
#include <random>

int bad_seed() {
  std::srand(static_cast<unsigned>(time(nullptr)));  // rng-source (srand + time)
  std::random_device rd;                             // rng-source
  std::cout << "seed: " << rd() << "\n";             // raw-stdout
  return std::rand();                                // rng-source
}
