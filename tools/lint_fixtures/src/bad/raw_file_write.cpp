// Fixture: every line below must trip the raw-file-write rule — durable
// files in library code go through AtomicFileWriter, never a bare stream.
#include <cstdio>
#include <fstream>

void bad_stream_write(const char* path) {
  std::ofstream out(path);  // torn file if the process dies mid-write
  out << 42;
}

void bad_cstdio_write(const char* path) {
  std::FILE* f = std::fopen(path, "wb");
  if (f != nullptr) std::fclose(f);
}

void fine_cstdio_read(const char* path) {
  // Reading is allowed; only write modes are flagged.
  std::FILE* f = std::fopen(path, "rb");
  if (f != nullptr) std::fclose(f);
}
