// Known-bad fixture for the serve-wall-clock rule: serving code must read
// time through the injectable ServeClock, never the chrono clocks directly.
#include <chrono>

namespace ftpim::serve {

long long bad_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace ftpim::serve
