// Lint fixture: unordered container in a serialization path — iteration
// order would depend on hash-table layout. NOT COMPILED.
#include <string>
#include <unordered_map>

void write_entries(const std::unordered_map<std::string, int>& entries) {
  for (const auto& kv : entries) {
    (void)kv;  // order nondeterministic: unordered-output must fire
  }
}
