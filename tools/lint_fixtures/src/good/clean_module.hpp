// Lint fixture: fully compliant header — the linter must stay silent here.
// Comments may mention std::rand, random_device, std::cout and assert()
// freely; only code positions count. NOT COMPILED.
#pragma once

#include <map>
#include <string>

namespace ftpim_fixture {

inline int lookup(const std::map<std::string, int>& table, const std::string& key) {
  const auto it = table.find(key);
  return it == table.end() ? -1 : it->second;
}

}  // namespace ftpim_fixture
