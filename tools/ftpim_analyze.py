#!/usr/bin/env python3
"""ftpim_analyze.py - semantic static analyzer for the ftpim tree.

Sibling of ftpim_lint.py: where the linter catches single-line hygiene
violations by regex, this tool parses `src/` into an include graph and a
lightweight function-body token model and runs three semantic passes:

  1. layering           - enforce the module DAG
                            common -> tensor -> {nn, optim, data} -> reram
                                   -> models -> {core, prune} -> serve
                          Rejects include cycles and back-edges (including
                          cross-sibling includes at the same rank), and flags
                          includes whose provided tokens are never used by the
                          including file (IWYU-lite).
  2. hot-path audit     - functions annotated FTPIM_HOT (src/common/
                          annotations.hpp) and everything they locally call
                          must not heap-allocate, grow containers, construct
                          std::string, acquire mutexes, or read the wall
                          clock. Traversal stops at FTPIM_COLD (explicitly
                          acknowledged slow paths: arena growth, error
                          settlement, one-time config reads).
  3. exception surface  - worker-thread functions (worker_loop) and promise
                          settlement helpers (answer / answer_error) in
                          src/serve/ must be declared noexcept; destructors
                          must not throw; every `catch (...)` must rethrow or
                          settle a promise / log through the sink.

Findings print human-readable and (with --json) as a machine artifact.
tools/analyze_baseline.json allows incremental adoption of the hot-path and
IWYU rules; layering rules (layer-back-edge, include-cycle, unknown-module)
are hard errors and can NOT be baselined. Stale baseline entries fail the
run so the file can only shrink.

The C++ model is deliberately lightweight (no real parser):
  * comments / string / char literals are blanked (C++14 digit separators
    like 1'000'000 are handled);
  * function definitions are found by brace scanning with a head classifier
    (ctor member-init lists split at the top-level ':'; lambdas fold into
    their enclosing function; operator overloads and brace-member-inits in
    init lists are known blind spots);
  * callees are `identifier(` tokens resolved to definitions in the same
    file, or to a unique single-file definition tree-wide - ambiguous names
    (virtual `forward`, overloaded `record`) are not followed.

Usage:
  tools/ftpim_analyze.py --root .              # analyze src/, exit 1 on findings
  tools/ftpim_analyze.py --root . --json out.json
  tools/ftpim_analyze.py --self-test           # run against tools/analyze_fixtures/
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from dataclasses import dataclass, field

# --------------------------------------------------------------------------
# Module DAG. A file under src/<module>/ may include headers of the same
# module or of a strictly lower rank. Equal rank but different module
# (nn <-> optim <-> data, core <-> prune) is a back-edge: siblings are
# independent by design.
# --------------------------------------------------------------------------
MODULE_RANK = {
    "common": 0,
    "tensor": 1,
    "nn": 2,
    "optim": 2,
    "data": 2,
    "reram": 3,
    "models": 4,
    "core": 5,
    "prune": 5,
    "serve": 6,
    "fleet": 7,
}

# Rules that can never be baselined: the layering contract holds everywhere.
UNBASELINABLE = {"layer-back-edge", "include-cycle", "unknown-module"}

# Exception-surface allowlist: functions that run on worker threads or settle
# promises. They must carry `noexcept` so a stray exception cannot unwind
# past a promise or terminate via a propagating worker.
NOEXCEPT_REQUIRED = {"worker_loop", "answer", "answer_error"}
NOEXCEPT_REQUIRED_PREFIX = "src/serve/"

# Per-rule allowed files: the one sanctioned definition site of a primitive
# is not re-flagged (usage sites still are).
HOT_RULE_ALLOWED_FILES = {
    # clock.hpp is the single sanctioned chrono::now() site (serve-wall-clock
    # lint rule); SteadyServeClock::now_ns is reached from hot pop paths.
    "hot-clock": {"src/serve/clock.hpp"},
    # The annotated Mutex/MutexLock wrappers themselves call .lock(); hot
    # code is flagged where it *constructs* a MutexLock, not inside the
    # wrapper implementation.
    "hot-mutex": {"src/common/thread_annotations.hpp"},
}

# token-class patterns scanned over FTPIM_HOT-reachable function bodies.
HOT_PATTERNS = (
    ("hot-alloc",
     r"\bnew\b|\bmake_unique\s*<|\bmake_shared\s*<|\bmalloc\s*\(|\bcalloc\s*\(|\brealloc\s*\(",
     "heap allocation"),
    ("hot-growth",
     r"(?:\.|->)\s*(?:push_back|emplace_back|resize|reserve|insert|emplace|append|assign)\s*\(",
     "container growth call"),
    ("hot-string",
     r"\bstd\s*::\s*string\b(?!\s*[&*])|\bto_string\s*\(|\bstrformat\s*\(|\bformat_msg\s*\(",
     "std::string construction / formatting"),
    ("hot-mutex",
     r"\bMutexLock\b|\block_guard\b|\bunique_lock\b|\bscoped_lock\b|\bcall_once\s*\(|(?:\.|->)\s*lock\s*\(\s*\)",
     "mutex acquisition"),
    ("hot-clock",
     r"\b(?:steady_clock|system_clock|high_resolution_clock)\s*::\s*now\s*\(",
     "wall-clock read"),
)

# `catch (...)` bodies must contain one of these: a rethrow, a promise
# settlement, a pass through the logging sink, or a deliberate process exit.
CATCH_SETTLE = re.compile(
    r"throw\s*;|\bcurrent_exception\b|\brethrow_exception\b|\banswer_error\b"
    r"|\bset_exception\b|\bset_value\b|\blog_(?:warn|error|info|debug)\s*\("
    r"|\bterminate\s*\(|\babort\s*\(")

CPP_KEYWORDS = {
    "alignas", "alignof", "asm", "auto", "bool", "break", "case", "catch",
    "char", "class", "const", "constexpr", "const_cast", "continue",
    "decltype", "default", "delete", "do", "double", "dynamic_cast", "else",
    "enum", "explicit", "export", "extern", "false", "float", "for", "friend",
    "goto", "if", "inline", "int", "long", "mutable", "namespace", "new",
    "noexcept", "nullptr", "operator", "private", "protected", "public",
    "register", "reinterpret_cast", "return", "short", "signed", "sizeof",
    "static", "static_assert", "static_cast", "struct", "switch", "template",
    "this", "throw", "true", "try", "typedef", "typeid", "typename", "union",
    "unsigned", "using", "virtual", "void", "volatile", "while",
}
CONTROL_HEADS = re.compile(
    r"^(?:\[\[[^\]]*\]\]\s*)*(?:if|for|while|switch|catch|do|else|return|try)\b")

# Curated provided-token table for std headers the tree uses. An include of a
# header listed here is flagged when none of its tokens appear; headers NOT
# in the table are skipped (never flagged).
STD_HEADER_TOKENS = {
    "algorithm": ["sort", "stable_sort", "min", "max", "minmax", "clamp",
                  "fill", "fill_n", "copy", "copy_n", "copy_if", "find",
                  "find_if", "count", "count_if", "transform", "all_of",
                  "any_of", "none_of", "equal", "lower_bound", "upper_bound",
                  "nth_element", "partial_sort", "reverse", "rotate",
                  "shuffle", "unique", "remove", "remove_if", "generate",
                  "max_element", "min_element", "mismatch", "search",
                  "binary_search", "partition", "swap_ranges"],
    "array": ["array"],
    "atomic": ["atomic", "memory_order", "memory_order_relaxed",
               "memory_order_acquire", "memory_order_release",
               "memory_order_seq_cst", "atomic_flag", "atomic_thread_fence"],
    "cassert": ["assert"],
    "cctype": ["isdigit", "isalpha", "isspace", "tolower", "toupper",
               "isalnum", "isupper", "islower", "ispunct", "isxdigit"],
    "cerrno": ["errno"],
    "cfloat": ["FLT_EPSILON", "FLT_MAX", "FLT_MIN", "DBL_EPSILON", "DBL_MAX",
               "DBL_MIN"],
    "chrono": ["chrono"],
    "cinttypes": ["PRId64", "PRIu64", "PRIx64"],
    "climits": ["INT_MAX", "INT_MIN", "LONG_MAX", "UINT_MAX", "CHAR_BIT",
                "LLONG_MAX", "LLONG_MIN"],
    "cmath": ["sqrt", "sqrtf", "exp", "expf", "exp2", "log", "logf", "log2",
              "log10", "pow", "powf", "fabs", "fabsf", "floor", "ceil",
              "round", "lround", "llround", "trunc", "fmod", "isnan",
              "isinf", "isfinite", "tanh", "sinh", "cosh", "sin", "cos",
              "tan", "atan", "atan2", "asin", "acos", "erf", "hypot",
              "copysign", "nearbyint", "fma", "M_PI", "INFINITY", "NAN"],
    "condition_variable": ["condition_variable", "cv_status"],
    "cstddef": ["size_t", "ptrdiff_t", "nullptr_t", "byte", "max_align_t",
                "NULL"],
    "cstdint": ["int8_t", "int16_t", "int32_t", "int64_t", "uint8_t",
                "uint16_t", "uint32_t", "uint64_t", "intptr_t", "uintptr_t",
                "intmax_t", "uintmax_t", "INT64_MAX", "INT64_MIN",
                "UINT64_MAX", "INT32_MAX", "INT32_MIN", "UINT32_MAX",
                "SIZE_MAX"],
    "cstdio": ["printf", "fprintf", "snprintf", "sprintf", "sscanf",
               "fscanf", "fopen", "fclose", "fread", "fwrite", "fflush",
               "fseek", "ftell", "rewind", "remove", "rename", "tmpfile",
               "FILE", "EOF", "stdout", "stderr", "stdin", "fgets", "fputs",
               "fputc", "fgetc", "perror", "vsnprintf", "ferror", "feof",
               "setvbuf", "fileno", "SEEK_SET", "SEEK_CUR", "SEEK_END"],
    "cstdlib": ["malloc", "calloc", "realloc", "free", "abort", "exit",
                "atexit", "getenv", "system", "strtol", "strtoll", "strtoul",
                "strtod", "strtof", "atoi", "atof", "rand", "srand", "qsort",
                "bsearch", "EXIT_SUCCESS", "EXIT_FAILURE", "abs", "labs",
                "llabs"],
    "cstring": ["memcpy", "memmove", "memset", "memcmp", "memchr", "strlen",
                "strcmp", "strncmp", "strcpy", "strncpy", "strcat",
                "strncat", "strchr", "strrchr", "strstr", "strerror",
                "strtok"],
    "ctime": ["time_t", "time", "clock", "clock_t", "localtime", "gmtime",
              "strftime", "difftime", "mktime", "timespec"],
    "deque": ["deque"],
    "exception": ["exception", "exception_ptr", "current_exception",
                  "rethrow_exception", "make_exception_ptr", "terminate",
                  "set_terminate", "uncaught_exceptions", "nested_exception",
                  "throw_with_nested", "rethrow_if_nested"],
    "filesystem": ["filesystem"],
    "fstream": ["ifstream", "ofstream", "fstream", "filebuf"],
    "functional": ["function", "bind", "ref", "cref", "reference_wrapper",
                   "hash", "plus", "minus", "multiplies", "less", "greater",
                   "equal_to", "invoke", "mem_fn", "not_fn", "placeholders"],
    "future": ["future", "promise", "packaged_task", "async", "launch",
               "future_error", "future_status", "shared_future",
               "future_errc"],
    "initializer_list": ["initializer_list"],
    "iomanip": ["setw", "setprecision", "setfill", "setbase"],
    "iostream": ["cout", "cerr", "cin", "clog"],
    "iterator": ["back_inserter", "front_inserter", "inserter", "distance",
                 "advance", "next", "prev", "make_move_iterator",
                 "ostream_iterator", "istream_iterator", "iterator_traits"],
    "limits": ["numeric_limits"],
    "list": ["list"],
    "map": ["map", "multimap"],
    "memory": ["unique_ptr", "shared_ptr", "weak_ptr", "make_unique",
               "make_shared", "allocator", "addressof", "align",
               "enable_shared_from_this", "default_delete", "destroy_at",
               "construct_at"],
    "mutex": ["mutex", "lock_guard", "unique_lock", "scoped_lock",
              "recursive_mutex", "timed_mutex", "call_once", "once_flag",
              "try_lock", "adopt_lock", "defer_lock", "try_to_lock"],
    "new": ["bad_alloc", "nothrow", "launder", "align_val_t",
            "set_new_handler", "hardware_destructive_interference_size"],
    "numeric": ["accumulate", "iota", "inner_product", "partial_sum",
                "adjacent_difference", "reduce", "gcd", "lcm", "midpoint"],
    "optional": ["optional", "nullopt", "make_optional",
                 "bad_optional_access", "in_place"],
    "queue": ["queue", "priority_queue"],
    "random": ["mt19937", "mt19937_64", "random_device",
               "uniform_int_distribution", "uniform_real_distribution",
               "normal_distribution", "bernoulli_distribution",
               "discrete_distribution", "seed_seq", "minstd_rand",
               "default_random_engine"],
    "set": ["set", "multiset"],
    "sstream": ["stringstream", "ostringstream", "istringstream",
                "stringbuf"],
    "stack": ["stack"],
    "stdexcept": ["runtime_error", "logic_error", "invalid_argument",
                  "out_of_range", "domain_error", "length_error",
                  "range_error", "overflow_error", "underflow_error"],
    "string": ["string", "to_string", "stoi", "stol", "stoll", "stoul",
               "stoull", "stof", "stod", "getline", "char_traits",
               "wstring", "npos"],
    "string_view": ["string_view", "wstring_view"],
    "system_error": ["error_code", "error_condition", "system_error",
                     "system_category", "generic_category", "errc",
                     "error_category"],
    "thread": ["thread", "this_thread", "yield", "sleep_for", "sleep_until",
               "hardware_concurrency"],
    "tuple": ["tuple", "make_tuple", "tie", "forward_as_tuple", "tuple_size",
              "tuple_element", "apply", "tuple_cat", "ignore"],
    "type_traits": ["enable_if", "enable_if_t", "is_same", "is_same_v",
                    "decay", "decay_t", "remove_reference", "remove_cv",
                    "remove_cvref", "conditional", "conditional_t",
                    "underlying_type", "underlying_type_t", "is_arithmetic",
                    "is_arithmetic_v", "is_integral", "is_integral_v",
                    "is_floating_point", "is_floating_point_v", "is_enum",
                    "is_enum_v", "is_convertible", "is_convertible_v",
                    "is_base_of", "is_base_of_v", "is_trivially_copyable",
                    "is_trivially_copyable_v", "void_t", "true_type",
                    "false_type", "integral_constant", "is_signed",
                    "is_unsigned", "is_constructible", "is_invocable",
                    "invoke_result", "invoke_result_t", "common_type",
                    "is_pointer", "is_const", "is_void", "is_reference"],
    "unordered_map": ["unordered_map", "unordered_multimap"],
    "unordered_set": ["unordered_set", "unordered_multiset"],
    "utility": ["move", "forward", "swap", "pair", "make_pair", "exchange",
                "declval", "index_sequence", "make_index_sequence",
                "as_const", "piecewise_construct", "integer_sequence"],
    "variant": ["variant", "visit", "get_if", "holds_alternative",
                "monostate", "bad_variant_access"],
    "vector": ["vector"],
}
STD_HEADER_TOKEN_SETS = {h: frozenset(t) for h, t in STD_HEADER_TOKENS.items()}

IDENT = re.compile(r"[A-Za-z_]\w*")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s*([<"])([^>"]+)[>"]')


# --------------------------------------------------------------------------
# lexing
# --------------------------------------------------------------------------
def strip_code(text):
    """Blank comments, string literals and char literals, preserving length
    and newlines so offsets map 1:1 onto the original file. C++14 digit
    separators (1'000'000) do not open a char literal."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and nxt == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = out[i + 1] = " "
                i += 2
        elif c == '"':
            i += 1
            while i < n and text[i] != '"':
                if text[i] == "\\" and i + 1 < n:
                    out[i] = " "
                    i += 1
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            i += 1
        elif c == "'":
            if i > 0 and (text[i - 1].isalnum() or text[i - 1] == "_"):
                i += 1  # digit separator
                continue
            i += 1
            while i < n and text[i] != "'":
                if text[i] == "\\" and i + 1 < n:
                    out[i] = " "
                    i += 1
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            i += 1
        else:
            i += 1
    return "".join(out)


def blank_preprocessor(code, keep_non_include=False):
    """Blank preprocessor lines (with backslash continuations). When
    keep_non_include is True only #include lines are blanked - #define
    bodies keep their tokens for the IWYU usage scan."""
    lines = code.split("\n")
    out = []
    i = 0
    while i < len(lines):
        line = lines[i]
        if line.lstrip().startswith("#"):
            is_include = line.lstrip().startswith("#include") or \
                re.match(r"^\s*#\s*include\b", line)
            blank = not (keep_non_include and not is_include)
            while True:
                cont = lines[i].rstrip().endswith("\\")
                out.append("" if blank else lines[i])
                if not cont or i + 1 >= len(lines):
                    break
                i += 1
        else:
            out.append(line)
        i += 1
    return "\n".join(out)


def match_brace(code, open_idx):
    depth = 0
    for j in range(open_idx, len(code)):
        c = code[j]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                return j
    return None


# --------------------------------------------------------------------------
# function model
# --------------------------------------------------------------------------
@dataclass
class Function:
    rel: str
    name: str
    qual: str
    line: int
    hot: bool
    cold: bool
    noexcept_: bool
    is_dtor: bool
    body: str
    body_pos: int  # char offset of the body in the file's code text


def _split_ctor_init(head):
    """Return head with a ctor member-init list (top-level single ':')
    removed. '::' and ternary ':' are left alone."""
    depth = 0
    saw_q = 0
    i = 0
    while i < len(head):
        c = head[i]
        if c in "([":
            depth += 1
        elif c in ")]":
            depth -= 1
        elif c == "?" and depth == 0:
            saw_q += 1
        elif c == ":" and depth == 0:
            if i + 1 < len(head) and head[i + 1] == ":":
                i += 2
                continue
            if i > 0 and head[i - 1] == ":":
                i += 1
                continue
            if saw_q > 0:
                saw_q -= 1
            else:
                return head[:i]
        i += 1
    return head


_TRAIL_MACRO = re.compile(r"\b[A-Z][A-Z0-9_]{2,}\s*(?:\(\s*[^()]*\s*\))?\s*$")
_TRAIL_SPEC = re.compile(r"\b(const|noexcept|override|final|mutable|try)\s*$")
_TRAIL_NOEXCEPT_EXPR = re.compile(r"\bnoexcept\s*\(\s*[^()]*\s*\)\s*$")
_NAME_AT_END = re.compile(r"(~?\w+(?:\s*::\s*~?\w+)*)\s*$")


def _classify_head(head):
    """Return a dict describing a function definition, or None if `head {`
    opens a scope/control block to descend into."""
    h = head.strip()
    h = re.sub(r"^(?:\s*(?:public|private|protected)\s*:)+", "", h).strip()
    if not h or "(" not in h:
        return None
    if CONTROL_HEADS.match(h):
        return None
    if re.match(r"^(?:template\s*<[^{}]*>\s*)?(?:class|struct|union|enum|namespace)\b", h):
        return None
    if h.endswith(("=", ",", "(", "[", "&&", "||")):
        return None
    # assignment / brace-init at top level -> not a function definition.
    # Angle depth is tracked (guardedly) so template default arguments like
    # `template <typename T = float>` are not mistaken for assignments.
    depth = 0
    angle = 0
    for j, c in enumerate(h):
        if c in "([":
            depth += 1
        elif c in ")]":
            depth -= 1
        elif c == "<" and j > 0 and (h[j - 1].isalnum() or h[j - 1] in "_,<"):
            angle += 1
        elif c == ">" and angle > 0 and (j == 0 or h[j - 1] != "-"):
            angle -= 1
        elif c == "=" and depth == 0 and angle == 0:
            return None
    sig = _split_ctor_init(h).strip()
    noexcept_flag = False
    # peel trailing specifiers until the parameter-list ')' is at the end
    while True:
        sig = sig.strip()
        if sig.endswith("]]"):
            k = sig.rfind("[[")
            if k < 0:
                return None
            sig = sig[:k]
            continue
        arrow = sig.rfind("->")
        if arrow >= 0 and sig[:arrow].rstrip().endswith(")"):
            sig = sig[:arrow]
            continue
        m = _TRAIL_NOEXCEPT_EXPR.search(sig)
        if m:
            noexcept_flag = True
            sig = sig[:m.start()]
            continue
        m = _TRAIL_SPEC.search(sig)
        if m:
            if m.group(1) == "noexcept":
                noexcept_flag = True
            sig = sig[:m.start()]
            continue
        if sig.endswith("&&") or sig.endswith("&"):
            sig = sig.rstrip("&")
            continue
        m = _TRAIL_MACRO.search(sig)
        if m and sig[:m.start()].rstrip().endswith(")"):
            # FTPIM_ACQUIRE(mu_), FTPIM_NO_THREAD_SAFETY_ANALYSIS, ... -
            # an ALL_CAPS macro *after* the parameter list. The parameter
            # list of an ordinary function never matches (its name is not
            # ALL_CAPS in this tree).
            sig = sig[:m.start()]
            continue
        break
    sig = sig.strip()
    if not sig.endswith(")"):
        return None
    depth = 0
    open_idx = None
    for j in range(len(sig) - 1, -1, -1):
        if sig[j] == ")":
            depth += 1
        elif sig[j] == "(":
            depth -= 1
            if depth == 0:
                open_idx = j
                break
    if open_idx is None:
        return None
    before = sig[:open_idx].rstrip()
    m = _NAME_AT_END.search(before)
    if not m:
        return None
    qual = re.sub(r"\s+", "", m.group(1))
    name = qual.split("::")[-1]
    bare = name.lstrip("~")
    if not bare or bare in CPP_KEYWORDS or bare[0].isdigit():
        return None
    return {
        "name": name.lstrip("~"),
        "qual": qual,
        "is_dtor": name.startswith("~"),
        # safety net for specifier orders the peel loop missed: any
        # `) noexcept` after the parameter list counts.
        "noexcept": noexcept_flag or bool(re.search(r"\)\s*noexcept\b", h)),
        "hot": "FTPIM_HOT" in head,
        "cold": "FTPIM_COLD" in head,
    }


def extract_functions(code, rel):
    """Brace-scan `code` (comments/strings/preprocessor blanked) and return
    the list of function definitions. Lambdas and operator overloads are not
    extracted; their bodies fold into the enclosing scan."""
    functions = []

    def scan(start, end):
        head_start = start
        i = start
        while i < end:
            c = code[i]
            if c == ";":
                head_start = i + 1
            elif c == "}":
                head_start = i + 1
            elif c == "{":
                close = match_brace(code, i)
                if close is None or close > end:
                    return
                head = code[head_start:i]
                info = _classify_head(head)
                if info is not None:
                    line = code[:i].count("\n") + 1
                    functions.append(Function(
                        rel=rel, name=info["name"], qual=info["qual"],
                        line=line, hot=info["hot"], cold=info["cold"],
                        noexcept_=info["noexcept"], is_dtor=info["is_dtor"],
                        body=code[i + 1:close], body_pos=i + 1))
                else:
                    scan(i + 1, close)
                i = close
                head_start = close + 1
            i += 1

    scan(0, len(code))
    return functions


# --------------------------------------------------------------------------
# file model
# --------------------------------------------------------------------------
@dataclass
class SourceFile:
    rel: str
    text: str
    code: str          # comments/strings blanked (offsets preserved)
    token_text: str    # code with #include lines blanked (IWYU usage scan)
    fn_text: str       # code with ALL preprocessor blanked (function scan)
    includes: list = field(default_factory=list)   # (line, target, is_system)
    functions: list = field(default_factory=list)
    tokens: frozenset = frozenset()
    provided: frozenset = frozenset()


_PROVIDE_PATTERNS = (
    re.compile(r"^\s*#\s*define\s+(\w+)", re.M),
    re.compile(r"\b(?:class|struct|union)\s+([A-Za-z_]\w*)"),
    re.compile(r"\benum\s+(?:class\s+|struct\s+)?([A-Za-z_]\w*)"),
    re.compile(r"\busing\s+([A-Za-z_]\w*)\s*="),
    re.compile(r"\btypedef\b[^;]*?\b([A-Za-z_]\w*)\s*;"),
    re.compile(r"\b([A-Za-z_]\w*)\s*\("),          # decls, defs, calls
    re.compile(r"\b(?:constexpr|const|inline|extern)\s+(?:[\w:<>,\s\*&]+?\s)?([A-Za-z_]\w*)\s*[={;]"),
)


def _provided_tokens(sf):
    """Tokens a header offers its includers. Over-provides (any identifier
    followed by '(' counts) - safe direction for an unused-include check."""
    out = set()
    for pat in _PROVIDE_PATTERNS:
        src = sf.code if pat.pattern.startswith("^") else sf.token_text
        for m in pat.finditer(src):
            tok = m.group(1)
            if tok not in CPP_KEYWORDS:
                out.add(tok)
    # enumerators: identifiers inside enum braces
    for m in re.finditer(r"\benum\s+(?:class\s+|struct\s+)?\w*[^{};]*\{([^{}]*)\}",
                         sf.token_text):
        for ident in IDENT.findall(m.group(1)):
            if ident not in CPP_KEYWORDS:
                out.add(ident)
    return frozenset(out)


def parse_file(root, rel):
    with open(os.path.join(root, rel), "r", encoding="utf-8") as fh:
        text = fh.read()
    sf = SourceFile(rel=rel, text=text, code="", token_text="", fn_text="")
    sf.code = strip_code(text)
    # includes come from the RAW text (paths live inside string quotes)
    for lineno, line in enumerate(text.split("\n"), start=1):
        m = INCLUDE_RE.match(line)
        if m:
            sf.includes.append((lineno, m.group(2), m.group(1) == "<"))
    sf.token_text = blank_preprocessor(sf.code, keep_non_include=True)
    sf.fn_text = blank_preprocessor(sf.code, keep_non_include=False)
    sf.functions = extract_functions(sf.fn_text, rel)
    sf.tokens = frozenset(t for t in IDENT.findall(sf.token_text)
                          if t not in CPP_KEYWORDS)
    sf.provided = _provided_tokens(sf)
    return sf


def iter_source_files(root):
    """All .hpp/.cpp files under <root>/src, sorted for determinism."""
    out = []
    src = os.path.join(root, "src")
    for dirpath, dirnames, filenames in os.walk(src):
        dirnames.sort()
        for fn in sorted(filenames):
            if fn.endswith((".hpp", ".cpp", ".h", ".cc")):
                out.append(os.path.relpath(os.path.join(dirpath, fn), root))
    return out


def module_of(rel):
    parts = rel.replace("\\", "/").split("/")
    return parts[1] if len(parts) > 2 and parts[0] == "src" else None


# --------------------------------------------------------------------------
# findings
# --------------------------------------------------------------------------
@dataclass
class Finding:
    rule: str
    path: str
    line: int
    func: str
    token: str
    message: str
    baselined: bool = False

    @property
    def key(self):
        return "|".join((self.rule, self.path, self.func, self.token))

    def render(self):
        where = f"{self.path}:{self.line}"
        fn = f" [{self.func}]" if self.func else ""
        return f"{where}: {self.rule}{fn}: {self.message}"


# --------------------------------------------------------------------------
# pass 1: layering
# --------------------------------------------------------------------------
def pass_layering(files):
    findings = []
    by_rel = {sf.rel: sf for sf in files}

    # unknown modules
    for sf in files:
        mod = module_of(sf.rel)
        if mod is None or mod not in MODULE_RANK:
            findings.append(Finding(
                "unknown-module", sf.rel, 1, "", mod or "?",
                f"file is not under a known module (src/<module>/); "
                f"known: {', '.join(sorted(MODULE_RANK))}"))

    # back-edges
    for sf in files:
        mod = module_of(sf.rel)
        if mod not in MODULE_RANK:
            continue
        for lineno, target, is_sys in sf.includes:
            if is_sys or target not in by_rel:
                continue
            tmod = module_of(target)
            if tmod not in MODULE_RANK or tmod == mod:
                continue
            src_rank, dst_rank = MODULE_RANK[mod], MODULE_RANK[tmod]
            if dst_rank > src_rank or (dst_rank == src_rank):
                kind = ("higher-ranked" if dst_rank > src_rank
                        else "sibling")
                findings.append(Finding(
                    "layer-back-edge", sf.rel, lineno, "", target,
                    f"module '{mod}' (rank {src_rank}) includes {kind} "
                    f"module '{tmod}' (rank {dst_rank}) via {target}; the "
                    f"DAG is common -> tensor -> {{nn,optim,data}} -> reram "
                    f"-> models -> {{core,prune}} -> serve -> fleet"))

    # include cycles: Tarjan SCC over project-include edges
    graph = {sf.rel: [t for _, t, s in sf.includes
                      if not s and t in by_rel and t != sf.rel]
             for sf in files}
    index = {}
    low = {}
    on_stack = set()
    stack = []
    sccs = []
    counter = [0]

    def strongconnect(v):
        # iterative Tarjan to be safe on deep include chains
        work = [(v, 0)]
        while work:
            node, pi = work[-1]
            if pi == 0:
                index[node] = low[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            recurse = False
            succs = graph[node]
            for j in range(pi, len(succs)):
                w = succs[j]
                if w not in index:
                    work[-1] = (node, j + 1)
                    work.append((w, 0))
                    recurse = True
                    break
                if w in on_stack:
                    low[node] = min(low[node], index[w])
            if recurse:
                continue
            if low[node] == index[node]:
                scc = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.append(w)
                    if w == node:
                        break
                sccs.append(scc)
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])

    for v in sorted(graph):
        if v not in index:
            strongconnect(v)
    for scc in sccs:
        self_loop = len(scc) == 1 and scc[0] in graph[scc[0]]
        if len(scc) > 1 or self_loop:
            cyc = " -> ".join(sorted(scc) + [sorted(scc)[0]])
            for member in sorted(scc):
                findings.append(Finding(
                    "include-cycle", member, 1, "", "cycle",
                    f"include cycle: {cyc}"))

    # IWYU-lite: unused includes
    for sf in files:
        base = os.path.splitext(os.path.basename(sf.rel))[0]
        for lineno, target, is_sys in sf.includes:
            if is_sys:
                toks = STD_HEADER_TOKEN_SETS.get(target)
                if toks is None:
                    continue  # unknown system header: out of scope
                if not (toks & sf.tokens):
                    findings.append(Finding(
                        "unused-include", sf.rel, lineno, "", target,
                        f"no token of <{target}> is used in this file"))
                continue
            if target not in by_rel:
                continue
            tbase = os.path.splitext(os.path.basename(target))[0]
            if tbase == base and sf.rel.endswith(".cpp"):
                continue  # primary include of the implementation file
            provided = by_rel[target].provided
            if not (provided & sf.tokens):
                findings.append(Finding(
                    "unused-include", sf.rel, lineno, "", target,
                    f"no token provided by {target} is used in this file "
                    f"(tokens it provides may only be reached transitively)"))
    return findings


# --------------------------------------------------------------------------
# pass 2: hot-path audit
# --------------------------------------------------------------------------
_CALLEE = re.compile(r"\b([A-Za-z_]\w*)\s*\(")
_HOT_COMPILED = [(rule, re.compile(pat), what) for rule, pat, what in HOT_PATTERNS]


def _callees(body):
    out = []
    seen = set()
    for m in _CALLEE.finditer(body):
        name = m.group(1)
        if name in CPP_KEYWORDS or name in seen:
            continue
        # Skip member calls on a receiver (`x.str()`, `p->reserve()`): the
        # receiver's type is unknown, so resolving by bare name would chase
        # unrelated same-named methods (ByteWriter::str for oss.str(), ...).
        # Hot member functions are annotated FTPIM_HOT directly instead.
        before = body[:m.start()].rstrip()
        if before.endswith(".") or before.endswith("->"):
            continue
        seen.add(name)
        out.append(name)
    return out


def pass_hot(files):
    findings = []
    defs_by_name = {}
    for sf in files:
        for fn in sf.functions:
            defs_by_name.setdefault(fn.name, []).append(fn)

    def resolve(name, from_rel):
        cands = defs_by_name.get(name)
        if not cands:
            return []
        same_file = [f for f in cands if f.rel == from_rel]
        if same_file:
            return same_file
        files_with = {f.rel for f in cands}
        if len(files_with) == 1:
            return cands
        return []  # ambiguous across files: never followed

    roots = [fn for sf in files for fn in sf.functions if fn.hot]
    flagged = set()   # (rule, rel, qual, token) - dedup across roots
    scanned = set()   # (rel, qual, body_pos) - each body scanned once

    for root in roots:
        queue = [(root, [root.qual])]
        visited = {(root.rel, root.qual, root.body_pos)}
        while queue:
            fn, chain = queue.pop(0)
            sf_code_key = (fn.rel, fn.qual, fn.body_pos)
            if sf_code_key not in scanned:
                scanned.add(sf_code_key)
                allowed_rules = {r for r, fs in HOT_RULE_ALLOWED_FILES.items()
                                 if fn.rel in fs}
                for rule, pat, what in _HOT_COMPILED:
                    if rule in allowed_rules:
                        continue
                    for m in pat.finditer(fn.body):
                        token = m.group(0).strip().rstrip("(").strip()
                        token = re.sub(r"\s+", " ", token) or rule
                        fkey = (rule, fn.rel, fn.qual, token)
                        if fkey in flagged:
                            continue
                        flagged.add(fkey)
                        line = (fn.body[:m.start()].count("\n")
                                + fn.body_pos_line)
                        via = ("" if len(chain) == 1 else
                               f" (reached from FTPIM_HOT {chain[0]} via "
                               + " -> ".join(chain) + ")")
                        findings.append(Finding(
                            rule, fn.rel, line, fn.qual, token,
                            f"{what} `{token}` in hot path{via}"))
            for callee in _callees(fn.body):
                for target in resolve(callee, fn.rel):
                    if target.cold:
                        continue  # FTPIM_COLD stops traversal
                    tkey = (target.rel, target.qual, target.body_pos)
                    if tkey in visited:
                        continue
                    visited.add(tkey)
                    queue.append((target, chain + [target.qual]))
    return findings


# --------------------------------------------------------------------------
# pass 3: exception surface
# --------------------------------------------------------------------------
_CATCH_ALL = re.compile(r"\bcatch\s*\(\s*\.\.\.\s*\)\s*\{")
_THROW = re.compile(r"\bthrow\b")


def pass_exceptions(files):
    findings = []
    for sf in files:
        for fn in sf.functions:
            if (fn.name in NOEXCEPT_REQUIRED
                    and sf.rel.startswith(NOEXCEPT_REQUIRED_PREFIX)
                    and not fn.noexcept_):
                findings.append(Finding(
                    "noexcept-required", sf.rel, fn.line, fn.qual, fn.name,
                    f"`{fn.qual}` runs on a worker thread / settles promises "
                    f"and must be declared noexcept"))
            if fn.is_dtor and _THROW.search(fn.body):
                line = fn.body_pos_line + \
                    fn.body[:_THROW.search(fn.body).start()].count("\n")
                findings.append(Finding(
                    "throwing-dtor", sf.rel, line, fn.qual, "throw",
                    f"destructor `{fn.qual}` contains a throw; destructors "
                    f"are noexcept by default and this terminates"))
        # catch (...) settlement is a file-level scan: handlers can live in
        # lambdas or operators the function model does not extract.
        for m in _CATCH_ALL.finditer(sf.fn_text):
            open_idx = sf.fn_text.index("{", m.start())
            close = match_brace(sf.fn_text, open_idx)
            if close is None:
                continue
            body = sf.fn_text[open_idx + 1:close]
            if not CATCH_SETTLE.search(body):
                line = sf.fn_text[:m.start()].count("\n") + 1
                findings.append(Finding(
                    "catch-swallow", sf.rel, line,
                    _enclosing_function(sf, m.start()), "catch(...)",
                    "catch (...) neither rethrows nor settles a promise / "
                    "logs through the sink; exceptions must not vanish"))
    return findings


def _enclosing_function(sf, pos):
    best = ""
    for fn in sf.functions:
        if fn.body_pos <= pos <= fn.body_pos + len(fn.body):
            best = fn.qual
    return best


# --------------------------------------------------------------------------
# baseline
# --------------------------------------------------------------------------
def load_baseline(path):
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    entries = data.get("entries", [])
    problems = []
    keys = {}
    for e in entries:
        key = e.get("key", "")
        rule = key.split("|", 1)[0]
        if rule in UNBASELINABLE:
            problems.append(f"baseline entry '{key}' uses unbaselinable "
                            f"rule '{rule}' (layering violations are hard "
                            f"errors)")
        if not e.get("reason"):
            problems.append(f"baseline entry '{key}' has no reason")
        keys[key] = e
    return keys, problems


def apply_baseline(findings, baseline_keys):
    used = set()
    for f in findings:
        if f.rule in UNBASELINABLE:
            continue
        if f.key in baseline_keys:
            f.baselined = True
            used.add(f.key)
    stale = sorted(set(baseline_keys) - used)
    return stale


# --------------------------------------------------------------------------
# driver
# --------------------------------------------------------------------------
def analyze_tree(root):
    rels = iter_source_files(root)
    files = [parse_file(root, rel) for rel in rels]
    # body line numbers: precompute once per function
    for sf in files:
        for fn in sf.functions:
            fn.body_pos_line = sf.fn_text[:fn.body_pos].count("\n") + 1
    findings = []
    findings += pass_layering(files)
    findings += pass_hot(files)
    findings += pass_exceptions(files)
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.token))
    return files, findings


def run(root, baseline_path, json_path=None, quiet=False):
    files, findings = analyze_tree(root)
    baseline_keys, problems = ({}, [])
    if baseline_path and os.path.exists(baseline_path):
        baseline_keys, problems = load_baseline(baseline_path)
    stale = apply_baseline(findings, baseline_keys)
    new = [f for f in findings if not f.baselined]
    if json_path:
        payload = {
            "root": os.path.abspath(root),
            "files_scanned": len(files),
            "findings": [
                {"rule": f.rule, "path": f.path, "line": f.line,
                 "function": f.func, "token": f.token, "message": f.message,
                 "baselined": f.baselined, "key": f.key}
                for f in findings],
            "stale_baseline": stale,
            "baseline_problems": problems,
        }
        with open(json_path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if not quiet:
        for f in new:
            print(f.render())
        for key in stale:
            print(f"baseline: stale entry (no longer fires, delete it): {key}")
        for p in problems:
            print(f"baseline: {p}")
        n_base = sum(1 for f in findings if f.baselined)
        print(f"ftpim_analyze: {len(files)} files, {len(new)} finding(s), "
              f"{n_base} baselined, {len(stale)} stale baseline entr"
              f"{'y' if len(stale) == 1 else 'ies'}")
    return 0 if not new and not stale and not problems else 1


# --------------------------------------------------------------------------
# self-test against tools/analyze_fixtures/
# --------------------------------------------------------------------------
def self_test():
    fixture_root = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                "analyze_fixtures")
    _, findings = analyze_tree(fixture_root)
    by_path = {}
    for f in findings:
        by_path.setdefault(f.path, set()).add(f.rule)

    expected = {
        "src/common/cycle_a.hpp": {"include-cycle"},
        "src/common/cycle_b.hpp": {"include-cycle"},
        "src/tensor/back_edge.hpp": {"layer-back-edge"},
        "src/reram/abft_backedge.hpp": {"layer-back-edge"},
        "src/nn/unused_include.cpp": {"unused-include"},
        "src/tensor/hot_alloc.cpp": {"hot-alloc", "hot-growth", "hot-string",
                                     "hot-mutex", "hot-clock"},
        "src/tensor/hot_transitive.cpp": {"hot-alloc"},
        "src/serve/bad_worker.cpp": {"noexcept-required", "catch-swallow",
                                     "throwing-dtor"},
        "src/serve/fleet_backedge.hpp": {"layer-back-edge"},
    }
    known_good = ["src/serve/good_worker.cpp", "src/serve/api.hpp",
                  "src/common/base.hpp", "src/fleet/api.hpp",
                  "src/fleet/good_simulator.hpp"]

    failures = []
    for path, rules in sorted(expected.items()):
        fired = by_path.get(path, set())
        missing = rules - fired
        if missing:
            failures.append(f"{path}: expected rule(s) did not fire: "
                            f"{', '.join(sorted(missing))} (fired: "
                            f"{', '.join(sorted(fired)) or 'none'})")
    for path in known_good:
        fired = by_path.get(path, set())
        if fired:
            failures.append(f"{path}: known-good fixture raised: "
                            f"{', '.join(sorted(fired))}")

    # unbaselinable enforcement: a layering key in a baseline must be refused
    probe = {"layer-back-edge|x|y|z": {"key": "layer-back-edge|x|y|z",
                                       "reason": "nope"}}
    fake = [Finding("layer-back-edge", "x", 1, "y", "z", "m")]
    apply_baseline(fake, probe)
    if fake[0].baselined:
        failures.append("layer-back-edge finding was baselined; layering "
                        "rules must be unbaselinable")

    if failures:
        for msg in failures:
            print(f"self-test FAIL: {msg}")
        return 1
    total = sum(len(v) for v in by_path.values())
    print(f"self-test OK: every fixture rule fired "
          f"({total} finding rule-hits across {len(by_path)} files), "
          f"known-good fixtures clean, layering unbaselinable")
    return 0


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=".",
                    help="repository root (containing src/)")
    ap.add_argument("--baseline", default=None,
                    help="baseline JSON (default: <root>/tools/"
                         "analyze_baseline.json when present)")
    ap.add_argument("--json", dest="json_path", default=None,
                    help="write findings JSON artifact to this path")
    ap.add_argument("--self-test", action="store_true",
                    help="run the analyzer against tools/analyze_fixtures/")
    args = ap.parse_args(argv)
    if args.self_test:
        return self_test()
    root = args.root
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"ftpim_analyze: no src/ under --root {root}", file=sys.stderr)
        return 2
    baseline = args.baseline
    if baseline is None:
        cand = os.path.join(root, "tools", "analyze_baseline.json")
        baseline = cand if os.path.exists(cand) else None
    return run(root, baseline, json_path=args.json_path)


if __name__ == "__main__":
    sys.exit(main())
