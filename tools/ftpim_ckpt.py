#!/usr/bin/env python3
"""Offline inspector for ftpim .ftck training checkpoints.

Mirrors the C++ reader (src/common/checkpoint.cpp) byte for byte: FTCK magic,
u32 format version, framed chunks (4-char tag, u64 length, payload, CRC32C
over tag + payload), FEND end sentinel, no trailing bytes. Corruption is reported with the same
kind labels the C++ CheckpointError uses, so a file this tool rejects is
rejected by the C++ loader for the same reason, and vice versa.

Commands:
  verify <ckpt>     validate framing + checksums; exit 0 iff the file is sound
  dump <ckpt>       verify, then pretty-print header, chunks, and known payloads
  diff <a> <b>      compare two checkpoints chunk by chunk / tensor by tensor

Exit codes: 0 = OK (diff: identical), 1 = corrupt file (diff: differences),
2 = usage error.
"""

import os
import struct
import sys

FORMAT_VERSION = 1
MAGIC = b"FTCK"
SENTINEL = b"FEND"

# ---------------------------------------------------------------------------
# CRC32C (Castagnoli), software table — mirrors src/common/crc32c.cpp.

_POLY = 0x82F63B78


def _make_table():
    table = []
    for n in range(256):
        c = n
        for _ in range(8):
            c = (c >> 1) ^ _POLY if c & 1 else c >> 1
        table.append(c)
    return table


_TABLE = _make_table()


def crc32c(data):
    crc = 0xFFFFFFFF
    for b in data:
        crc = _TABLE[(crc ^ b) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


# ---------------------------------------------------------------------------
# Container parsing.


class CheckpointError(Exception):
    """kind labels match ftpim::to_string(CheckpointErrorKind)."""

    def __init__(self, kind, chunk, detail):
        self.kind = kind
        self.chunk = chunk
        where = f" chunk '{chunk}'" if chunk else ""
        super().__init__(f"checkpoint [{kind}]{where}: {detail}")


def parse_container(path):
    """Returns (version, ordered {tag: payload}); raises CheckpointError."""
    try:
        with open(path, "rb") as f:
            image = f.read()
    except FileNotFoundError:
        raise CheckpointError("missing", "", f"cannot open {path}")
    except OSError as e:
        raise CheckpointError("io", "", f"cannot read {path}: {e}")

    if len(image) < 8:
        raise CheckpointError(
            "truncated", "",
            f"{path} is only {len(image)} byte(s), shorter than the header")
    if image[:4] != MAGIC:
        raise CheckpointError("bad-magic", "", f"{path} does not start with FTCK")
    version = struct.unpack_from("<I", image, 4)[0]
    if version > FORMAT_VERSION:
        raise CheckpointError(
            "version-skew", "",
            f"{path} has format version {version}, this reader understands"
            f" <= {FORMAT_VERSION}")
    if version == 0:
        raise CheckpointError("format", "", f"{path} has format version 0")

    chunks = {}
    pos = 8
    while True:
        if len(image) - pos < 12:
            raise CheckpointError(
                "truncated", "", f"{path} ends mid-chunk-header at byte {pos}")
        tag_bytes = image[pos:pos + 4]
        if any(b < 0x20 or b > 0x7E for b in tag_bytes):
            raise CheckpointError(
                "format", "",
                f"{path} has a non-printable chunk tag at byte {pos}")
        tag = tag_bytes.decode("ascii")
        length = struct.unpack_from("<Q", image, pos + 4)[0]
        pos += 12
        if length > len(image) - pos:
            raise CheckpointError(
                "truncated", tag,
                f"{path} declares a {length}-byte payload but only"
                f" {len(image) - pos} byte(s) remain")
        payload = image[pos:pos + length]
        pos += length
        if len(image) - pos < 4:
            raise CheckpointError(
                "truncated", tag, f"{path} ends before the chunk checksum")
        stored = struct.unpack_from("<I", image, pos)[0]
        pos += 4
        actual = crc32c(tag_bytes + payload)
        if stored != actual:
            raise CheckpointError(
                "checksum-mismatch", tag,
                f"{path} chunk CRC32C {actual} != stored {stored}")
        if tag_bytes == SENTINEL:
            if length != 0:
                raise CheckpointError(
                    "format", tag, f"{path} end sentinel carries a payload")
            break
        if tag in chunks:
            raise CheckpointError("format", tag, f"{path} contains the chunk twice")
        chunks[tag] = payload
    if pos != len(image):
        raise CheckpointError(
            "format", "",
            f"{path} has {len(image) - pos} trailing byte(s) after the end sentinel")
    return version, chunks


class Payload:
    """Bounds-checked little-endian cursor over one chunk payload."""

    def __init__(self, data, chunk):
        self.data = data
        self.pos = 0
        self.chunk = chunk

    def take(self, n):
        if n > len(self.data) - self.pos:
            raise CheckpointError(
                "truncated", self.chunk,
                f"payload ends after {len(self.data)} bytes, need"
                f" {self.pos}+{n}")
        out = self.data[self.pos:self.pos + n]
        self.pos += n
        return out

    def u8(self):
        return self.take(1)[0]

    def u32(self):
        return struct.unpack("<I", self.take(4))[0]

    def u64(self):
        return struct.unpack("<Q", self.take(8))[0]

    def i64(self):
        return struct.unpack("<q", self.take(8))[0]

    def f32(self):
        return struct.unpack("<f", self.take(4))[0]

    def f64(self):
        return struct.unpack("<d", self.take(8))[0]

    def string(self):
        return self.take(self.u32()).decode("utf-8", errors="replace")

    def expect_done(self):
        if self.pos != len(self.data):
            raise CheckpointError(
                "format", self.chunk,
                f"{len(self.data) - self.pos} unexpected trailing payload byte(s)")


# ---------------------------------------------------------------------------
# Known-chunk decoders (src/core/train_checkpoint.cpp layouts).


def decode_cursor(payload):
    p = Payload(payload, "CURS")
    cur = {
        "next_stage": p.u32(),
        "next_epoch": p.u32(),
        "rate_sum": p.f64(),
        "rate_count": p.i64(),
        "stage_rates": [p.f64() for _ in range(p.u64())],
    }
    cur["epoch_losses"] = [[p.f32() for _ in range(p.u64())]
                           for _ in range(p.u64())]
    p.expect_done()
    return cur


def decode_state_dict(payload, chunk):
    """Returns {name: (shape tuple, raw f32 bytes)}."""
    p = Payload(payload, chunk)
    out = {}
    for _ in range(p.u64()):
        name = p.string()
        rank = p.u32()
        shape = tuple(p.i64() for _ in range(rank))
        numel = 1
        for d in shape:
            if d < 0:
                raise CheckpointError(
                    "format", chunk, f"tensor '{name}' has a negative dimension")
            numel *= d
        if name in out:
            raise CheckpointError("format", chunk, "duplicate state dict entry")
        out[name] = (shape, p.take(4 * numel))
    p.expect_done()
    return out


def decode_rng_streams(payload):
    p = Payload(payload, "RNGS")
    streams = []
    for _ in range(p.u64()):
        name = p.string()
        words = [p.u64() for _ in range(4)]
        has_cached = p.u8() != 0
        cached = p.f32()
        streams.append((name, words, has_cached, cached))
    p.expect_done()
    return streams


def decode_defect_map(payload):
    p = Payload(payload, "DMAP")
    cell_count = p.i64()
    faults = [(p.i64(), p.u8()) for _ in range(p.u64())]
    p.expect_done()
    return cell_count, faults


def decode_aging(payload):
    p = Payload(payload, "AGEM")
    cfg = {
        "p_new_per_interval": p.f64(),
        "interval_batches": p.i64(),
        "sa0_fraction": p.f64(),
        "seed": p.u64(),
    }
    p.expect_done()
    return cfg


# ---------------------------------------------------------------------------
# Commands.


def cmd_verify(path):
    version, chunks = parse_container(path)
    # Validate the known payload layouts too, so verify agrees with the C++
    # load_training_checkpoint, not just with the framing layer.
    if "CURS" in chunks:
        decode_cursor(chunks["CURS"])
    for tag in ("MODL", "OPTM"):
        if tag in chunks:
            decode_state_dict(chunks[tag], tag)
    if "RNGS" in chunks:
        decode_rng_streams(chunks["RNGS"])
    if "DMAP" in chunks:
        decode_defect_map(chunks["DMAP"])
    if "AGEM" in chunks:
        decode_aging(chunks["AGEM"])
    total = sum(len(p) for p in chunks.values())
    print(f"OK: {path} version {version}, {len(chunks)} chunk(s),"
          f" {total} payload byte(s)")
    return 0


def _shape_str(shape):
    return "x".join(str(d) for d in shape) if shape else "scalar"


def cmd_dump(path):
    version, chunks = parse_container(path)
    print(f"{path}: FTCK version {version}")
    for tag, payload in chunks.items():
        print(f"  {tag}  {len(payload):>10} bytes"
              f"  crc32c=0x{crc32c(tag.encode() + payload):08x}")
    if "CURS" in chunks:
        cur = decode_cursor(chunks["CURS"])
        done = sum(len(s) for s in cur["epoch_losses"])
        print(f"cursor: next stage {cur['next_stage']}, next epoch"
              f" {cur['next_epoch']} ({done} epoch(s) completed)")
        print(f"  stage rates: {cur['stage_rates']}")
        for s, losses in enumerate(cur["epoch_losses"]):
            print(f"  stage {s} losses: {[round(l, 6) for l in losses]}")
        mean = (cur["rate_sum"] / cur["rate_count"]) if cur["rate_count"] else 0.0
        print(f"  mean cell fault rate so far: {mean:.6g}"
              f" over {cur['rate_count']} injection(s)")
    for tag, label in (("MODL", "model"), ("OPTM", "optimizer")):
        if tag not in chunks:
            continue
        state = decode_state_dict(chunks[tag], tag)
        print(f"{label}: {len(state)} tensor(s)")
        for name, (shape, raw) in state.items():
            print(f"  {name:<40} {_shape_str(shape):>16}  {len(raw)} bytes")
    if "RNGS" in chunks:
        streams = decode_rng_streams(chunks["RNGS"])
        print(f"rng streams: {len(streams)}")
        for name, words, has_cached, cached in streams:
            state = " ".join(f"{w:016x}" for w in words)
            extra = f" cached={cached}" if has_cached else ""
            print(f"  {name}: {state}{extra}")
    if "DMAP" in chunks:
        cell_count, faults = decode_defect_map(chunks["DMAP"])
        sa0 = sum(1 for _, t in faults if t == 1)
        print(f"defect map: {len(faults)} stuck cell(s) of {cell_count}"
              f" ({sa0} SA0, {len(faults) - sa0} SA1)")
    if "AGEM" in chunks:
        cfg = decode_aging(chunks["AGEM"])
        print(f"aging: p_new={cfg['p_new_per_interval']} interval="
              f"{cfg['interval_batches']} sa0_fraction={cfg['sa0_fraction']}"
              f" seed={cfg['seed']}")
    return 0


def cmd_diff(path_a, path_b):
    _, a = parse_container(path_a)
    _, b = parse_container(path_b)
    differences = 0

    def report(line):
        nonlocal differences
        differences += 1
        print(line)

    for tag in sorted(set(a) | set(b)):
        if tag not in a:
            report(f"chunk {tag}: only in {path_b}")
        elif tag not in b:
            report(f"chunk {tag}: only in {path_a}")
    for tag in sorted(set(a) & set(b)):
        if a[tag] == b[tag]:
            continue
        if tag in ("MODL", "OPTM"):
            sa = decode_state_dict(a[tag], tag)
            sb = decode_state_dict(b[tag], tag)
            for name in sorted(set(sa) | set(sb)):
                if name not in sa:
                    report(f"{tag} tensor '{name}': only in {path_b}")
                elif name not in sb:
                    report(f"{tag} tensor '{name}': only in {path_a}")
                elif sa[name][0] != sb[name][0]:
                    report(f"{tag} tensor '{name}': shape"
                           f" {_shape_str(sa[name][0])} vs {_shape_str(sb[name][0])}")
                elif sa[name][1] != sb[name][1]:
                    va = struct.unpack(f"<{len(sa[name][1]) // 4}f", sa[name][1])
                    vb = struct.unpack(f"<{len(sb[name][1]) // 4}f", sb[name][1])
                    worst = max(abs(x - y) for x, y in zip(va, vb))
                    count = sum(1 for x, y in zip(va, vb) if x != y)
                    report(f"{tag} tensor '{name}': {count} value(s) differ,"
                           f" max abs diff {worst:.6g}")
        else:
            report(f"chunk {tag}: payloads differ"
                   f" ({len(a[tag])} vs {len(b[tag])} bytes)")
    if differences == 0:
        print("identical")
        return 0
    print(f"{differences} difference(s)")
    return 1


def main(argv):
    if len(argv) >= 2 and argv[0] == "verify":
        try:
            return cmd_verify(argv[1])
        except CheckpointError as e:
            print(e, file=sys.stderr)
            return 1
    if len(argv) >= 2 and argv[0] == "dump":
        try:
            return cmd_dump(argv[1])
        except CheckpointError as e:
            print(e, file=sys.stderr)
            return 1
    if len(argv) >= 3 and argv[0] == "diff":
        try:
            return cmd_diff(argv[1], argv[2])
        except CheckpointError as e:
            print(e, file=sys.stderr)
            return 1
    print(__doc__.strip(), file=sys.stderr)
    return 2


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv[1:]))
    except BrokenPipeError:  # e.g. `dump … | head`
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
