// Shared harness pieces for the paper-reproduction bench binaries.
//
// Each bench prints (1) the paper-style table at the active FTPIM_SCALE and
// (2) a "shape-check" section asserting the paper's qualitative claims hold
// on this run (who wins, where). Absolute numbers differ from the paper —
// the substrate is a scaled CPU simulation (see DESIGN.md §3) — but the
// orderings are the reproduction target.
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "src/common/config.hpp"
#include "src/common/parallel.hpp"
#include "src/common/timer.hpp"
#include "src/core/experiment.hpp"
#include "src/core/table_printer.hpp"

namespace ftpim::bench {

/// Machine-readable bench artifact writer. Produces a flat JSON document
///
///   { "bench": "<name>", "<meta>": ..., "points": [ {...}, ... ] }
///
/// so perf trajectories can be diffed across commits (BENCH_gemm.json,
/// BENCH_serve.json are committed artifacts — see DESIGN.md §11). Values are
/// either numbers or strings; no nesting beyond the points array.
class BenchJsonWriter {
 public:
  class Record {
   public:
    Record& num(const std::string& key, double value) {
      char buf[64];
      // %.17g round-trips doubles; integral values print without exponent.
      if (value == static_cast<double>(static_cast<long long>(value))) {
        std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
      } else {
        std::snprintf(buf, sizeof(buf), "%.17g", value);
      }
      fields_.emplace_back(key, buf);
      return *this;
    }
    Record& str(const std::string& key, const std::string& value) {
      fields_.emplace_back(key, "\"" + value + "\"");
      return *this;
    }

   private:
    friend class BenchJsonWriter;
    std::vector<std::pair<std::string, std::string>> fields_;

    void render(std::string& out, const char* indent) const {
      out += indent;
      out += "{";
      for (std::size_t i = 0; i < fields_.size(); ++i) {
        if (i != 0) out += ", ";
        out += "\"" + fields_[i].first + "\": " + fields_[i].second;
      }
      out += "}";
    }
  };

  explicit BenchJsonWriter(std::string bench_name) { meta_.str("bench", std::move(bench_name)); }

  /// Top-level metadata (threads, dispatch level, host knobs, ...).
  Record& meta() { return meta_; }

  /// Appends one data point; fill it via the returned record.
  Record& point() { return points_.emplace_back(); }

  /// Writes the document; returns false (and warns on stderr) on I/O error.
  bool write(const std::string& path) const {
    std::string out = "{\n";
    for (const auto& [key, value] : meta_.fields_) {
      out += "  \"" + key + "\": " + value + ",\n";
    }
    out += "  \"points\": [\n";
    for (std::size_t i = 0; i < points_.size(); ++i) {
      points_[i].render(out, "    ");
      if (i + 1 != points_.size()) out += ",";
      out += "\n";
    }
    out += "  ]\n}\n";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "BenchJsonWriter: cannot open %s\n", path.c_str());
      return false;
    }
    const bool ok = std::fwrite(out.data(), 1, out.size(), f) == out.size();
    std::fclose(f);
    if (ok) std::printf("wrote %s (%zu points)\n", path.c_str(), points_.size());
    return ok;
  }

 private:
  Record meta_;
  std::vector<Record> points_;
};

/// Testing failure-rate grid trimmed to the active scale.
inline std::vector<double> test_rates_for(const RunScale& scale) {
  if (scale.name == "full") return paper_test_rates();
  if (scale.name == "medium") return {0, 0.001, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2};
  return {0, 0.001, 0.005, 0.01, 0.02, 0.05, 0.1};
}

/// Training failure-rate grid (table rows) trimmed to the active scale.
inline std::vector<double> train_rates_for(const RunScale& scale) {
  if (scale.name == "full") return paper_train_rates();
  if (scale.name == "medium") return {0.005, 0.01, 0.05, 0.1};
  return {0.01, 0.1};
}

inline std::vector<std::string> rate_headers(const std::string& label_col,
                                             const std::vector<double>& rates) {
  std::vector<std::string> headers{label_col};
  for (const double r : rates) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", r);
    headers.emplace_back(buf);
  }
  return headers;
}

inline std::vector<double> to_percent(const std::vector<double>& fractions) {
  std::vector<double> out;
  out.reserve(fractions.size());
  for (const double f : fractions) out.push_back(f * 100.0);
  return out;
}

struct ShapeCheck {
  int passed = 0;
  int failed = 0;
  void expect(bool ok, const std::string& claim) {
    std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", claim.c_str());
    (ok ? passed : failed)++;
  }
  void summary() const {
    std::printf("shape-check: %d ok, %d failed\n", passed, failed);
  }
};

inline void print_preamble(const std::string& what, const Experiment& exp) {
  const RunScale& s = exp.config().scale;
  std::printf("=== %s ===\n", what.c_str());
  std::printf("dataset: %s | model: ResNet-%d (width %d) | scale: %s\n",
              exp.dataset_name().c_str(), exp.config().resnet_depth,
              static_cast<int>(s.resnet_width), s.name.c_str());
  std::printf("epochs/stage: %d | train: %d | test: %d | img: %dx%d | defect runs: %d | threads: %d\n\n",
              s.epochs, s.train_size, s.test_size, static_cast<int>(s.image_size),
              static_cast<int>(s.image_size), s.defect_runs, num_threads());
}

}  // namespace ftpim::bench
