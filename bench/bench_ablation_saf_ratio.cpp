// Ablation A1: how the SA0:SA1 split shapes the damage (design-choice ablation
// for DESIGN.md §4). The paper fixes P_sa0:P_sa1 = 1.75:9.04 (mostly
// stuck-on); this bench evaluates a pretrained model under all-stuck-off,
// the paper split, a uniform split, and all-stuck-on defects.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace ftpim;
  using namespace ftpim::bench;
  Experiment exp(ExperimentConfig{.classes = 10,
                                  .resnet_depth = 20,
                                  .scale = run_scale(),
                                  .seed = static_cast<std::uint64_t>(env_int("FTPIM_SEED", 2028)),
                                  .verbose = false});
  print_preamble("Ablation A1 (SA0:SA1 ratio)", exp);

  auto model = exp.fresh_model();
  const double clean = exp.pretrain(*model);
  std::printf("pretrained acc=%.2f%%\n", clean * 100.0);

  const std::vector<double> rates = {0.001, 0.005, 0.01, 0.05};
  TablePrinter table("Acc_defect (%) by SA0 fraction", rate_headers("SA0 fraction", rates));

  struct Split {
    const char* name;
    double sa0_fraction;
  };
  std::map<std::string, std::vector<double>> curves;
  DefectEvalConfig cfg = exp.defect_eval_config();
  for (const Split s : {Split{"all SA0 (stuck-off)", 1.0},
                        Split{"paper 1.75:9.04", kPaperSa0Fraction},
                        Split{"uniform 1:1", 0.5},
                        Split{"all SA1 (stuck-on)", 0.0}}) {
    cfg.sa0_fraction = s.sa0_fraction;
    std::vector<double> accs;
    for (const double rate : rates) {
      accs.push_back(evaluate_under_defects(*model, exp.test_data(), rate, cfg).mean_acc);
    }
    table.add_row(s.name, to_percent(accs));
    curves[s.name] = accs;
  }
  std::printf("\n%s\n", table.render().c_str());

  ShapeCheck check;
  // Stuck-off zeroes cells (mild, prune-like); stuck-on saturates weights to
  // +/- w_max (harsh). The paper split is stuck-on-dominated, so it should
  // hurt much more than all-SA0 and track all-SA1 closely.
  const std::size_t hi = rates.size() - 1;
  check.expect(curves["all SA0 (stuck-off)"][hi] >= curves["all SA1 (stuck-on)"][hi],
               "stuck-off-only defects are milder than stuck-on-only");
  check.expect(curves["paper 1.75:9.04"][hi] <= curves["uniform 1:1"][hi] + 0.02,
               "paper split (stuck-on dominated) is at least as harsh as uniform");
  check.summary();
  return 0;
}
