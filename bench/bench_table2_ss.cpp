// Reproduces Table II: Accuracy and Stability Score (SS) of fault-tolerant
// models derived from the pretrained and ADMM-pruned (70% sparsity)
// ResNet-32 models, at target testing failure rates 0.01 and 0.02.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "src/core/stability.hpp"
#include "src/core/trainer.hpp"
#include "src/prune/admm_pruner.hpp"
#include "src/prune/sparsity.hpp"

namespace {

using namespace ftpim;
using namespace ftpim::bench;

/// ADMM-prunes `model` to `sparsity` with masked fine-tuning; returns the
/// clean post-pruning accuracy.
double admm_prune_and_finetune(Experiment& exp, Sequential& model, double sparsity) {
  TrainConfig tc = exp.base_train_config();
  tc.sgd.lr = 0.01f;  // fine-tune regime
  AdmmPruner pruner(model, AdmmConfig{.sparsity = sparsity, .rho = 1e-2f});
  {
    Trainer trainer(model, exp.train_data(), tc);
    TrainHooks hooks;
    hooks.after_backward = [&pruner](int, std::int64_t) { pruner.regularize_grads(); };
    hooks.after_epoch = [&pruner](int, float) { pruner.dual_update(); };
    trainer.set_hooks(hooks);
    trainer.run();
  }
  const std::vector<PruneMask> masks = pruner.finalize();
  {
    Trainer trainer(model, exp.train_data(), tc);
    for (const PruneMask& m : masks) trainer.optimizer().set_mask(m.param, m.mask);
    trainer.run();
  }
  return evaluate_accuracy(model, exp.test_data());
}

struct SsRow {
  std::string label;
  double retrain, defect_01, defect_02, ss_01, ss_02;
};

void run_block(Experiment& exp, Sequential& base_model, double acc_pretrain,
               const std::string& block_name, std::vector<SsRow>& rows) {
  const DefectEvalConfig eval_cfg = exp.defect_eval_config();

  auto eval_row = [&](Sequential& model, const std::string& label) {
    const double retrain = evaluate_accuracy(model, exp.test_data());
    const double d01 = evaluate_under_defects(model, exp.test_data(), 0.01, eval_cfg).mean_acc;
    const double d02 = evaluate_under_defects(model, exp.test_data(), 0.02, eval_cfg).mean_acc;
    rows.push_back(SsRow{
        label, retrain, d01, d02,
        stability_score({acc_pretrain, retrain, d01}),
        stability_score({acc_pretrain, retrain, d02})});
  };

  std::printf("[%s] baseline row...\n", block_name.c_str());
  eval_row(base_model, block_name + " / no FT");
  // The paper's Table II spans {0.01, 0.05, 0.1} x {one-shot, progressive};
  // quick scale runs a representative subset (full grid under FTPIM_SCALE=full).
  struct Variant {
    FtScheme scheme;
    double rate;
  };
  std::vector<Variant> variants{{FtScheme::kOneShot, 0.01},
                                {FtScheme::kOneShot, 0.05},
                                {FtScheme::kProgressive, 0.1}};
  if (run_scale().name == "full") {
    variants = {{FtScheme::kOneShot, 0.01},    {FtScheme::kOneShot, 0.05},
                {FtScheme::kOneShot, 0.1},     {FtScheme::kProgressive, 0.01},
                {FtScheme::kProgressive, 0.05}, {FtScheme::kProgressive, 0.1}};
  }
  for (const Variant v : variants) {
    const char* tag = v.scheme == FtScheme::kOneShot ? "One-Shot" : "Progressive";
    std::printf("[%s] %s P_sa^T=%g...\n", block_name.c_str(), tag, v.rate);
    auto ft = exp.ft_variant(base_model, v.scheme, v.rate);
    char label[96];
    std::snprintf(label, sizeof(label), "%s / %s P_sa^T=%g", block_name.c_str(), tag, v.rate);
    eval_row(*ft, label);
  }
}

}  // namespace

int main() {
  Experiment exp(ExperimentConfig{.classes = 100,
                                  .resnet_depth = 32,
                                  .scale = run_scale(),
                                  .seed = static_cast<std::uint64_t>(env_int("FTPIM_SEED", 2026)),
                                  .verbose = false});
  print_preamble("Table II (SS, CIFAR-100, ResNet-32, dense + ADMM-pruned 70%)", exp);

  auto pretrained = exp.fresh_model();
  const double acc_pretrain = exp.pretrain(*pretrained);
  std::printf("pretrained acc=%.2f%%\n", acc_pretrain * 100.0);

  std::vector<SsRow> rows;
  run_block(exp, *pretrained, acc_pretrain, "Pretrained", rows);

  auto pruned = exp.clone_model(*pretrained);
  const double acc_pruned = admm_prune_and_finetune(exp, *pruned, 0.70);
  std::printf("ADMM-pruned (70%%) acc=%.2f%%, sparsity=%.1f%%\n", acc_pruned * 100.0,
              model_sparsity(*pruned) * 100.0);
  std::vector<SsRow> pruned_rows;
  run_block(exp, *pruned, acc_pruned, "ADMM-70%", pruned_rows);

  TablePrinter table("Table II — Accuracy (%) and Stability Score",
                     {"Method", "Acc_retrain", "Acc_def(0.01)", "Acc_def(0.02)", "SS(0.01)",
                      "SS(0.02)"});
  for (const auto* block : {&rows, &pruned_rows}) {
    for (const SsRow& r : *block) {
      table.add_row(r.label, {r.retrain * 100.0, r.defect_01 * 100.0, r.defect_02 * 100.0,
                              r.ss_01, r.ss_02});
    }
  }
  std::printf("\n%s\n", table.render().c_str());

  ShapeCheck check;
  // Claim 1: FT training dramatically improves SS over the no-FT baseline.
  bool ft_improves = true;
  for (const auto* block : {&rows, &pruned_rows}) {
    for (std::size_t i = 1; i < block->size(); ++i) {
      if ((*block)[i].ss_01 <= (*block)[0].ss_01) ft_improves = false;
    }
  }
  check.expect(ft_improves, "every FT variant improves SS(0.01) over its no-FT baseline");
  // Claim 2: pruned models are more fragile: baseline pruned SS <= dense SS
  // and pruned Acc_defect collapses at 0.01.
  check.expect(pruned_rows[0].defect_01 <= rows[0].defect_01 + 0.02,
               "pruned baseline is at most as robust as dense baseline at rate 0.01");
  // Claim 3: for the pruned block, larger P_sa^T gives higher SS (paper
  // finding 2: 0.1 over 0.01 by ~2x). Tolerate small-sample noise.
  check.expect(pruned_rows.back().ss_01 >= pruned_rows[1].ss_01 * 0.9,
               "pruned: largest-P_sa^T variant's SS >= smallest's (10% tolerance)");
  check.summary();
  return 0;
}
