// Ablation A2: fault-pattern refresh granularity during FT training.
// Algorithm 1 draws Apply_Fault once per epoch; per-iteration redraws see
// more fault patterns per epoch. Also contrasts straight-through vs masked
// gradients at the faulted positions.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace ftpim;
  using namespace ftpim::bench;
  Experiment exp(ExperimentConfig{.classes = 10,
                                  .resnet_depth = 20,
                                  .scale = run_scale(),
                                  .seed = static_cast<std::uint64_t>(env_int("FTPIM_SEED", 2029)),
                                  .verbose = false});
  print_preamble("Ablation A2 (fault refresh granularity x grad mode)", exp);

  auto pretrained = exp.fresh_model();
  const double clean = exp.pretrain(*pretrained);
  std::printf("pretrained acc=%.2f%%\n", clean * 100.0);

  const double target = 0.05;
  const std::vector<double> rates = {0, 0.01, 0.05, 0.1};
  TablePrinter table("Acc (%) after one-shot FT training at P_sa^T=0.05",
                     rate_headers("Variant", rates));

  struct Variant {
    const char* name;
    FaultRefresh refresh;
    GradMode grad;
  };
  std::vector<Variant> variants{
      Variant{"per-epoch, straight-through", FaultRefresh::kPerEpoch,
              GradMode::kStraightThrough},
      Variant{"per-iteration, straight-through", FaultRefresh::kPerIteration,
              GradMode::kStraightThrough}};
  if (run_scale().name != "quick") {
    variants.push_back(Variant{"per-epoch, masked-grad", FaultRefresh::kPerEpoch,
                               GradMode::kMasked});
    variants.push_back(Variant{"per-iteration, masked-grad", FaultRefresh::kPerIteration,
                               GradMode::kMasked});
  }
  std::map<std::string, std::vector<double>> curves;
  for (const Variant& v : variants) {
    auto model = exp.clone_model(*pretrained);
    FtTrainConfig ft;
    ft.base = exp.base_train_config();
    ft.base.sgd.lr = 0.05f;  // retraining regime (matches Experiment::ft_variant)
    ft.scheme = FtScheme::kOneShot;
    ft.target_p_sa = target;
    ft.refresh = v.refresh;
    ft.grad_mode = v.grad;
    ft.fault_seed = 777;
    FaultTolerantTrainer trainer(*model, exp.train_data(), ft);
    trainer.run();
    const std::vector<double> accs = exp.sweep_rates(*model, rates);
    table.add_row(v.name, to_percent(accs));
    curves[v.name] = accs;
    std::printf("  %s done (clean %.2f%%)\n", v.name, accs.front() * 100.0);
  }
  std::printf("\n%s\n", table.render().c_str());

  ShapeCheck check;
  // All variants should beat the untrained baseline at the target rate.
  DefectEvalConfig cfg = exp.defect_eval_config();
  const double baseline_at_target =
      evaluate_under_defects(*pretrained, exp.test_data(), target, cfg).mean_acc;
  bool all_beat = true;
  for (const auto& [name, accs] : curves) {
    if (accs[2] <= baseline_at_target) all_beat = false;
  }
  check.expect(all_beat, "every FT variant beats the non-FT baseline at the trained rate");
  check.summary();
  return 0;
}
