// Ablation A4: composing stochastic FT training with hardware mitigations —
// TMR cell redundancy (the ECC-style approach the paper cites as
// complementary, [28]) and lognormal conductance variation (beyond-paper
// robustness probe). Shows (1) TMR alone helps at 3x cell cost, (2) FT
// training alone helps at zero hardware cost, (3) they compose.
#include <cstdio>

#include "bench_common.hpp"
#include "src/reram/redundancy.hpp"
#include "src/reram/variation.hpp"

namespace {

using namespace ftpim;
using namespace ftpim::bench;

/// Mean accuracy over devices deployed with R-replica redundancy.
double redundant_defect_acc(Sequential& model, const Dataset& test, double p_sa, int replicas,
                            int runs) {
  double sum = 0.0;
  for (int run = 0; run < runs; ++run) {
    Rng rng(derive_seed(8181, static_cast<std::uint64_t>(run)));
    const RedundancyConfig cfg{.replicas = replicas};
    const RedundantFaultGuard guard(model, StuckAtFaultModel(p_sa), cfg, rng);
    sum += evaluate_accuracy(model, test);
  }
  return sum / runs;
}

/// Mean accuracy under SAF + lognormal variation (sigma).
double variation_defect_acc(Sequential& model, const Dataset& test, double p_sa, float sigma,
                            int runs) {
  double sum = 0.0;
  for (int run = 0; run < runs; ++run) {
    Rng rng(derive_seed(9292, static_cast<std::uint64_t>(run)));
    const WeightFaultGuard guard(model, StuckAtFaultModel(p_sa), InjectorConfig{}, rng);
    apply_variation_to_model(model, VariationConfig{.sigma = sigma}, rng);
    sum += evaluate_accuracy(model, test);
    // guard restores the clean (pre-fault, pre-variation) weights
  }
  return sum / runs;
}

}  // namespace

int main() {
  Experiment exp(ExperimentConfig{.classes = 10,
                                  .resnet_depth = 20,
                                  .scale = run_scale(),
                                  .seed = static_cast<std::uint64_t>(env_int("FTPIM_SEED", 2032)),
                                  .verbose = false});
  print_preamble("Ablation A4 (FT training x TMR redundancy x variation)", exp);

  const double p_sa = 0.02;
  const int runs = exp.config().scale.defect_runs;

  auto plain = exp.fresh_model();
  const double clean = exp.pretrain(*plain);
  std::printf("pretrained acc=%.2f%%\n", clean * 100.0);
  auto ft = exp.ft_variant(*plain, FtScheme::kOneShot, p_sa * 2.5);
  std::printf("FT model trained (clean %.2f%%)\n\n",
              evaluate_accuracy(*ft, exp.test_data()) * 100.0);

  TablePrinter table("Acc (%) at P_sa=0.02 under different deployments",
                     {"Deployment", "plain model", "FT model"});
  std::map<std::string, std::pair<double, double>> rows;
  auto add = [&](const char* name, double a, double b) {
    table.add_row(name, {a * 100.0, b * 100.0});
    rows[name] = {a, b};
  };

  add("R=1 (no redundancy)",
      redundant_defect_acc(*plain, exp.test_data(), p_sa, 1, runs),
      redundant_defect_acc(*ft, exp.test_data(), p_sa, 1, runs));
  add("R=3 (TMR, 3x cells)",
      redundant_defect_acc(*plain, exp.test_data(), p_sa, 3, runs),
      redundant_defect_acc(*ft, exp.test_data(), p_sa, 3, runs));
  add("R=5 (5x cells)",
      redundant_defect_acc(*plain, exp.test_data(), p_sa, 5, runs),
      redundant_defect_acc(*ft, exp.test_data(), p_sa, 5, runs));
  add("SAF + variation s=0.1",
      variation_defect_acc(*plain, exp.test_data(), p_sa, 0.1f, runs),
      variation_defect_acc(*ft, exp.test_data(), p_sa, 0.1f, runs));
  add("SAF + variation s=0.3",
      variation_defect_acc(*plain, exp.test_data(), p_sa, 0.3f, runs),
      variation_defect_acc(*ft, exp.test_data(), p_sa, 0.3f, runs));
  std::printf("%s\n", table.render().c_str());

  ShapeCheck check;
  check.expect(rows["R=3 (TMR, 3x cells)"].first > rows["R=1 (no redundancy)"].first,
               "TMR alone improves the plain model under SAF");
  check.expect(rows["R=1 (no redundancy)"].second > rows["R=1 (no redundancy)"].first,
               "FT training alone improves robustness at zero hardware cost");
  check.expect(rows["R=3 (TMR, 3x cells)"].second >=
                   std::max(rows["R=3 (TMR, 3x cells)"].first,
                            rows["R=1 (no redundancy)"].second) - 0.02,
               "FT training and TMR compose (within 2pt noise)");
  check.expect(rows["SAF + variation s=0.3"].second > rows["SAF + variation s=0.3"].first,
               "FT training also helps under added conductance variation");
  check.summary();
  return 0;
}
