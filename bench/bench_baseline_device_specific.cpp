// Baseline B1: device-specific defect-aware retraining (Xia et al. DAC'17,
// the paper's §II-B related work) vs stochastic FT training.
//
// The paper's versatility argument, quantified: the device-specific model is
// excellent on the device it was retrained for and poor on every other
// device, while one stochastic FT model generalizes to the whole fleet
// without per-device retraining.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "src/common/stats.hpp"
#include "src/core/device_specific.hpp"

int main() {
  using namespace ftpim;
  using namespace ftpim::bench;
  Experiment exp(ExperimentConfig{.classes = 10,
                                  .resnet_depth = 20,
                                  .scale = run_scale(),
                                  .seed = static_cast<std::uint64_t>(env_int("FTPIM_SEED", 2031)),
                                  .verbose = false});
  print_preamble("Baseline B1 (device-specific retraining vs stochastic FT)", exp);

  const double p_sa = env_double("FTPIM_PSA", 0.01);
  const int fleet = env_int("FTPIM_DEVICES", 8);
  const std::uint64_t defect_seed = 4040;

  auto pretrained = exp.fresh_model();
  const double clean = exp.pretrain(*pretrained);
  std::printf("pretrained acc=%.2f%% | deployment rate P_sa=%g | fleet of %d devices\n\n",
              clean * 100.0, p_sa, fleet);

  auto fleet_accs = [&](Sequential& model) {
    std::vector<double> accs;
    for (int d = 0; d < fleet; ++d) {
      accs.push_back(evaluate_on_device(model, exp.test_data(), p_sa, kPaperSa0Fraction,
                                        InjectorConfig{}, defect_seed,
                                        static_cast<std::uint64_t>(d)));
    }
    return accs;
  };

  // (a) No mitigation.
  const std::vector<double> plain_accs = fleet_accs(*pretrained);

  // (b) Device-specific retraining targeted at device 0.
  auto specific = exp.clone_model(*pretrained);
  DeviceSpecificConfig ds;
  ds.base = exp.base_train_config();
  ds.base.sgd.lr = 0.05f;  // retraining regime (matches Experiment::ft_variant)
  ds.p_sa = p_sa;
  ds.defect_master_seed = defect_seed;
  ds.device_index = 0;
  device_specific_retrain(*specific, exp.train_data(), ds);
  const std::vector<double> specific_accs = fleet_accs(*specific);

  // (c) One stochastic FT model for the whole fleet.
  auto ft = exp.ft_variant(*pretrained, FtScheme::kProgressive, p_sa * 5);
  const std::vector<double> ft_accs = fleet_accs(*ft);

  TablePrinter table("Per-device accuracy (%)", [&] {
    std::vector<std::string> h{"Method", "dev0 (target)"};
    for (int d = 1; d < fleet; ++d) h.push_back("dev" + std::to_string(d));
    h.emplace_back("fleet mean");
    return h;
  }());
  auto add = [&](const char* name, const std::vector<double>& accs) {
    std::vector<double> row = to_percent(accs);
    row.push_back(summarize(accs).mean * 100.0);
    table.add_row(name, row);
  };
  add("No mitigation", plain_accs);
  add("Device-specific (dev0)", specific_accs);
  add("Stochastic FT (ours)", ft_accs);
  std::printf("%s\n", table.render().c_str());

  ShapeCheck check;
  check.expect(specific_accs[0] > plain_accs[0],
               "device-specific retraining rescues its own device");
  const Summary spec_others = summarize({specific_accs.begin() + 1, specific_accs.end()});
  const Summary ft_all = summarize(ft_accs);
  check.expect(specific_accs[0] > spec_others.mean,
               "device-specific model is best on its own device (poor transfer)");
  check.expect(ft_all.mean > summarize(plain_accs).mean,
               "one stochastic FT model lifts the whole fleet over no-mitigation");
  check.expect(ft_all.mean > spec_others.mean,
               "stochastic FT beats device-specific retraining on non-target devices");
  check.summary();
  return 0;
}
