// Substrate micro-benchmarks (google-benchmark): GEMM, im2col+conv forward,
// weight-space fault injection, defect-map sampling, and crossbar MVM.
// Engineering baseline, not a paper artifact.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "src/common/rng.hpp"
#include "src/models/small_cnn.hpp"
#include "src/reram/crossbar_engine.hpp"
#include "src/reram/defect_map.hpp"
#include "src/reram/fault_injector.hpp"
#include "src/tensor/gemm.hpp"
#include "src/tensor/tensor.hpp"

namespace {

using namespace ftpim;

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  Tensor t(std::move(shape));
  Rng rng(seed);
  for (std::int64_t i = 0; i < t.numel(); ++i) t[i] = rng.normal();
  return t;
}

void BM_Gemm(benchmark::State& state) {
  const auto n = state.range(0);
  const Tensor a = random_tensor(Shape{n, n}, 1);
  const Tensor b = random_tensor(Shape{n, n}, 2);
  Tensor c(Shape{n, n});
  for (auto _ : state) {
    gemm(n, n, n, 1.0f, a.data(), b.data(), 0.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_SmallCnnForward(benchmark::State& state) {
  auto net = make_small_cnn(SmallCnnConfig{.image_size = 16, .width = 8, .classes = 10});
  const Tensor x = random_tensor(Shape{32, 3, 16, 16}, 3);
  for (auto _ : state) {
    Tensor y = net->forward(x, /*training=*/false);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_SmallCnnForward);

void BM_FaultInjection(benchmark::State& state) {
  Tensor w = random_tensor(Shape{state.range(0)}, 4);
  const StuckAtFaultModel model(0.01);
  const InjectorConfig config;
  Rng rng(5);
  Tensor scratch = w;
  for (auto _ : state) {
    scratch = w;
    apply_stuck_at_faults(scratch, model, config, rng);
    benchmark::DoNotOptimize(scratch.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FaultInjection)->Arg(1 << 14)->Arg(1 << 18);

void BM_DefectMapSample(benchmark::State& state) {
  const StuckAtFaultModel model(0.01);
  Rng rng(6);
  for (auto _ : state) {
    DefectMap map = DefectMap::sample(state.range(0), model, rng);
    benchmark::DoNotOptimize(map.fault_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DefectMapSample)->Arg(1 << 16)->Arg(1 << 20);

void BM_CrossbarMvm(benchmark::State& state) {
  const auto dim = state.range(0);
  const Tensor w = random_tensor(Shape{dim, dim}, 7);
  CrossbarEngine engine(w, CrossbarEngineConfig{});
  std::vector<float> x(static_cast<std::size_t>(dim), 0.5f);
  std::vector<float> y(static_cast<std::size_t>(dim));
  for (auto _ : state) {
    engine.mvm(x.data(), y.data());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * dim * dim);
}
BENCHMARK(BM_CrossbarMvm)->Arg(128)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
