// Substrate micro-benchmarks (google-benchmark): GEMM, im2col+conv forward,
// weight-space fault injection, defect-map sampling, crossbar MVM, and the
// parallel Monte-Carlo defect evaluation. Engineering baseline, not a paper
// artifact.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "src/common/parallel.hpp"
#include "src/common/rng.hpp"
#include "src/core/evaluator.hpp"
#include "src/data/synthetic.hpp"
#include "src/models/small_cnn.hpp"
#include "src/reram/crossbar_engine.hpp"
#include "src/reram/defect_map.hpp"
#include "src/reram/fault_injector.hpp"
#include "src/tensor/gemm.hpp"
#include "src/tensor/tensor.hpp"

namespace {

using namespace ftpim;

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  Tensor t(std::move(shape));
  Rng rng(seed);
  for (std::int64_t i = 0; i < t.numel(); ++i) t[i] = rng.normal();
  return t;
}

void BM_Gemm(benchmark::State& state) {
  const auto n = state.range(0);
  const Tensor a = random_tensor(Shape{n, n}, 1);
  const Tensor b = random_tensor(Shape{n, n}, 2);
  Tensor c(Shape{n, n});
  for (auto _ : state) {
    gemm(n, n, n, 1.0f, a.data(), b.data(), 0.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_SmallCnnForward(benchmark::State& state) {
  auto net = make_small_cnn(SmallCnnConfig{.image_size = 16, .width = 8, .classes = 10});
  const Tensor x = random_tensor(Shape{32, 3, 16, 16}, 3);
  for (auto _ : state) {
    Tensor y = net->forward(x, /*training=*/false);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_SmallCnnForward);

void BM_FaultInjection(benchmark::State& state) {
  Tensor w = random_tensor(Shape{state.range(0)}, 4);
  const StuckAtFaultModel model(0.01);
  const InjectorConfig config;
  Rng rng(5);
  Tensor scratch = w;
  for (auto _ : state) {
    scratch = w;
    apply_stuck_at_faults(scratch, model, config, rng);
    benchmark::DoNotOptimize(scratch.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FaultInjection)->Arg(1 << 14)->Arg(1 << 18);

void BM_DefectMapSample(benchmark::State& state) {
  const StuckAtFaultModel model(0.01);
  Rng rng(6);
  for (auto _ : state) {
    DefectMap map = DefectMap::sample(state.range(0), model, rng);
    benchmark::DoNotOptimize(map.fault_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DefectMapSample)->Arg(1 << 16)->Arg(1 << 20);

void BM_CrossbarMvm(benchmark::State& state) {
  const auto dim = state.range(0);
  const Tensor w = random_tensor(Shape{dim, dim}, 7);
  CrossbarEngine engine(w, CrossbarEngineConfig{});
  std::vector<float> x(static_cast<std::size_t>(dim), 0.5f);
  std::vector<float> y(static_cast<std::size_t>(dim));
  for (auto _ : state) {
    engine.mvm(x.data(), y.data());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * dim * dim);
}
BENCHMARK(BM_CrossbarMvm)->Arg(128)->Arg(256);

// End-to-end Monte-Carlo defect evaluation at a fixed worker count
// (state.range(0) overrides FTPIM_THREADS). Run with Arg(1) vs Arg(2)/Arg(4)
// to measure the run-level fan-out; run_accs are bit-identical across args.
void BM_DefectEval(benchmark::State& state) {
  auto net = make_small_cnn(SmallCnnConfig{.image_size = 16, .width = 8, .classes = 10});
  SynthVisionConfig sv;
  sv.num_classes = 10;
  sv.image_size = 16;
  sv.samples = 128;
  sv.seed = 8;
  const auto data = make_synthvision(sv, /*sample_stream=*/1);
  DefectEvalConfig cfg;
  cfg.num_runs = 8;
  cfg.seed = 99;
  set_num_threads(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const DefectEvalResult r = evaluate_under_defects(*net, *data, /*p_sa=*/0.05, cfg);
    benchmark::DoNotOptimize(r.mean_acc);
  }
  set_num_threads(0);  // back to FTPIM_THREADS / hardware default
  state.SetItemsProcessed(state.iterations() * cfg.num_runs);
}
BENCHMARK(BM_DefectEval)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

// Cost of the deep copy each evaluation worker makes.
void BM_ModelClone(benchmark::State& state) {
  auto net = make_small_cnn(SmallCnnConfig{.image_size = 16, .width = 8, .classes = 10});
  for (auto _ : state) {
    auto copy = net->clone();
    benchmark::DoNotOptimize(copy.get());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ModelClone);

}  // namespace

BENCHMARK_MAIN();
