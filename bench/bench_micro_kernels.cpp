// Substrate micro-benchmarks: GEMM, conv forward, weight-space fault
// injection, defect-map sampling, crossbar MVM, and the parallel Monte-Carlo
// defect evaluation. Engineering baseline, not a paper artifact.
//
// Running the binary always performs the kernel-backend sweep and writes
// BENCH_gemm.json (override path with FTPIM_BENCH_JSON): GFLOP/s per shape
// for the seed scalar kernel (the pre-backend blocked loop, kept here as the
// perf-trajectory baseline) and for each runnable dispatch level of the
// packed backend. The google-benchmark suite additionally runs when any
// command-line flag is passed (e.g. --benchmark_filter=.) or
// FTPIM_MICROBENCH=1 is set.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/common/config.hpp"
#include "src/common/parallel.hpp"
#include "src/common/rng.hpp"
#include "src/common/timer.hpp"
#include "src/core/evaluator.hpp"
#include "src/data/synthetic.hpp"
#include "src/models/small_cnn.hpp"
#include "src/reram/crossbar_engine.hpp"
#include "src/reram/defect_map.hpp"
#include "src/reram/fault_injector.hpp"
#include "src/tensor/gemm.hpp"
#include "src/tensor/kernels/dispatch.hpp"
#include "src/tensor/tensor.hpp"

namespace {

using namespace ftpim;

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  Tensor t(std::move(shape));
  Rng rng(seed);
  for (std::int64_t i = 0; i < t.numel(); ++i) t[i] = rng.normal();
  return t;
}

// ---------------------------------------------------------------------------
// Seed baseline: the blocked triple loop that was ftpim::gemm before the
// packed kernel backend (PR 6), verbatim minus threading. Kept so
// BENCH_gemm.json records the speedup trajectory against a fixed reference.
// ---------------------------------------------------------------------------
void seed_gemm(std::int64_t m, std::int64_t n, std::int64_t k, float alpha, const float* a,
               const float* b, float beta, float* c) {
  constexpr std::int64_t kBlockK = 256;
  constexpr std::int64_t kBlockN = 128;
  if (beta == 0.0f) {
    std::memset(c, 0, static_cast<std::size_t>(m * n) * sizeof(float));
  } else if (beta != 1.0f) {
    for (std::int64_t i = 0; i < m * n; ++i) c[i] *= beta;
  }
  for (std::int64_t kk = 0; kk < k; kk += kBlockK) {
    const std::int64_t kend = std::min(k, kk + kBlockK);
    for (std::int64_t nn = 0; nn < n; nn += kBlockN) {
      const std::int64_t nend = std::min(n, nn + kBlockN);
      for (std::int64_t i = 0; i < m; ++i) {
        const float* arow = a + i * k;
        float* crow = c + i * n;
        for (std::int64_t p = kk; p < kend; ++p) {
          const float av = alpha * arow[p];
          if (av == 0.0f) continue;
          const float* brow = b + p * n;
          for (std::int64_t j = nn; j < nend; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }
}

struct GemmShape {
  std::int64_t m, n, k;
};

/// Best-of-3 GFLOP/s for fn(c) over enough repetitions to fill ~50ms.
template <typename Fn>
double time_gflops(const GemmShape& s, const Fn& fn) {
  const double flops = 2.0 * static_cast<double>(s.m) * static_cast<double>(s.n) *
                       static_cast<double>(s.k);
  // Calibrate repetitions from one warm-up run (which also pages buffers in).
  Timer warm;
  fn();
  const double once = std::max(warm.seconds(), 1e-7);
  const int reps = std::max(1, static_cast<int>(0.05 / once));
  double best = 1e30;
  for (int trial = 0; trial < 3; ++trial) {
    Timer t;
    for (int r = 0; r < reps; ++r) fn();
    best = std::min(best, t.seconds() / reps);
  }
  return flops / best * 1e-9;
}

/// Sweeps seed baseline + every runnable dispatch level over representative
/// shapes and writes the committed BENCH_gemm.json artifact. Single-threaded
/// (set_num_threads(1)) so the number measured is the micro-kernel + packing,
/// not the parallel partitioning.
void run_gemm_sweep(const std::string& path) {
  // Square sizes, one conv-forward-like shape (out_c x pixels x patch), one
  // Linear-like shape (batch x features x features), and a ragged edge case
  // exercising partial tiles on every macro dimension.
  const std::vector<GemmShape> shapes = {
      {64, 64, 64},   {128, 128, 128}, {256, 256, 256}, {384, 384, 384},
      {64, 1024, 576}, {32, 512, 512}, {147, 203, 101},
  };

  std::vector<kernels::KernelLevel> levels = {kernels::KernelLevel::kScalar};
  if (kernels::avx2_available()) levels.push_back(kernels::KernelLevel::kAvx2);

  bench::BenchJsonWriter json("gemm_kernels");
  json.meta()
      .num("threads", 1)
      .str("default_level", kernels::kernel_level_name(kernels::active_kernel_level()))
      .num("avx2_available", kernels::avx2_available() ? 1 : 0);

  set_num_threads(1);
  std::printf("=== packed GEMM sweep (single thread) ===\n");
  std::printf("%18s %10s %12s %12s\n", "shape (m,n,k)", "kernel", "GFLOP/s", "vs seed");
  for (const GemmShape& s : shapes) {
    const Tensor a = random_tensor(Shape{s.m, s.k}, 1);
    const Tensor b = random_tensor(Shape{s.k, s.n}, 2);
    Tensor c(Shape{s.m, s.n});

    const double seed_gf = time_gflops(
        s, [&] { seed_gemm(s.m, s.n, s.k, 1.0f, a.data(), b.data(), 0.0f, c.data()); });
    char shape_buf[48];
    std::snprintf(shape_buf, sizeof(shape_buf), "%lldx%lldx%lld", static_cast<long long>(s.m),
                  static_cast<long long>(s.n), static_cast<long long>(s.k));
    std::printf("%18s %10s %12.2f %12s\n", shape_buf, "seed", seed_gf, "1.00x");
    json.point()
        .num("m", static_cast<double>(s.m))
        .num("n", static_cast<double>(s.n))
        .num("k", static_cast<double>(s.k))
        .str("kernel", "seed")
        .num("threads", 1)
        .num("gflops", seed_gf)
        .num("speedup_vs_seed", 1.0);

    for (const kernels::KernelLevel level : levels) {
      kernels::set_kernel_level(level);
      const double gf = time_gflops(
          s, [&] { gemm(s.m, s.n, s.k, 1.0f, a.data(), b.data(), 0.0f, c.data()); });
      kernels::clear_kernel_level_override();
      const char* name = kernels::kernel_level_name(level);
      std::printf("%18s %10s %12.2f %11.2fx\n", shape_buf, name, gf, gf / seed_gf);
      json.point()
          .num("m", static_cast<double>(s.m))
          .num("n", static_cast<double>(s.n))
          .num("k", static_cast<double>(s.k))
          .str("kernel", name)
          .num("threads", 1)
          .num("gflops", gf)
          .num("speedup_vs_seed", gf / seed_gf);
    }
  }
  set_num_threads(0);
  json.write(path);
}

// ---------------------------------------------------------------------------
// google-benchmark suite (opt-in: any CLI flag or FTPIM_MICROBENCH=1)
// ---------------------------------------------------------------------------

void BM_Gemm(benchmark::State& state) {
  const auto n = state.range(0);
  const Tensor a = random_tensor(Shape{n, n}, 1);
  const Tensor b = random_tensor(Shape{n, n}, 2);
  Tensor c(Shape{n, n});
  for (auto _ : state) {
    gemm(n, n, n, 1.0f, a.data(), b.data(), 0.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_SmallCnnForward(benchmark::State& state) {
  auto net = make_small_cnn(SmallCnnConfig{.image_size = 16, .width = 8, .classes = 10});
  const Tensor x = random_tensor(Shape{32, 3, 16, 16}, 3);
  for (auto _ : state) {
    Tensor y = net->forward(x, /*training=*/false);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_SmallCnnForward);

void BM_FaultInjection(benchmark::State& state) {
  Tensor w = random_tensor(Shape{state.range(0)}, 4);
  const StuckAtFaultModel model(0.01);
  const InjectorConfig config;
  Rng rng(5);
  Tensor scratch = w;
  for (auto _ : state) {
    scratch = w;
    apply_stuck_at_faults(scratch, model, config, rng);
    benchmark::DoNotOptimize(scratch.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FaultInjection)->Arg(1 << 14)->Arg(1 << 18);

void BM_DefectMapSample(benchmark::State& state) {
  const StuckAtFaultModel model(0.01);
  Rng rng(6);
  for (auto _ : state) {
    DefectMap map = DefectMap::sample(state.range(0), model, rng);
    benchmark::DoNotOptimize(map.fault_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DefectMapSample)->Arg(1 << 16)->Arg(1 << 20);

void BM_CrossbarMvm(benchmark::State& state) {
  const auto dim = state.range(0);
  const Tensor w = random_tensor(Shape{dim, dim}, 7);
  CrossbarEngine engine(w, CrossbarEngineConfig{});
  std::vector<float> x(static_cast<std::size_t>(dim), 0.5f);
  std::vector<float> y(static_cast<std::size_t>(dim));
  for (auto _ : state) {
    engine.mvm(x.data(), y.data());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * dim * dim);
}
BENCHMARK(BM_CrossbarMvm)->Arg(128)->Arg(256);

// Batched MVM amortizes packing + tile traversal over the whole batch.
void BM_CrossbarMvmBatch(benchmark::State& state) {
  const std::int64_t dim = 128;
  const auto batch = state.range(0);
  const Tensor w = random_tensor(Shape{dim, dim}, 7);
  CrossbarEngine engine(w, CrossbarEngineConfig{});
  std::vector<float> x(static_cast<std::size_t>(batch * dim), 0.5f);
  std::vector<float> y(static_cast<std::size_t>(batch * dim));
  for (auto _ : state) {
    engine.mvm_batch(x.data(), batch, y.data());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * dim * dim * batch);
}
BENCHMARK(BM_CrossbarMvmBatch)->Arg(1)->Arg(8)->Arg(32);

// End-to-end Monte-Carlo defect evaluation at a fixed worker count
// (state.range(0) overrides FTPIM_THREADS). Run with Arg(1) vs Arg(2)/Arg(4)
// to measure the run-level fan-out; run_accs are bit-identical across args.
void BM_DefectEval(benchmark::State& state) {
  auto net = make_small_cnn(SmallCnnConfig{.image_size = 16, .width = 8, .classes = 10});
  SynthVisionConfig sv;
  sv.num_classes = 10;
  sv.image_size = 16;
  sv.samples = 128;
  sv.seed = 8;
  const auto data = make_synthvision(sv, /*sample_stream=*/1);
  DefectEvalConfig cfg;
  cfg.num_runs = 8;
  cfg.seed = 99;
  set_num_threads(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const DefectEvalResult r = evaluate_under_defects(*net, *data, /*p_sa=*/0.05, cfg);
    benchmark::DoNotOptimize(r.mean_acc);
  }
  set_num_threads(0);  // back to FTPIM_THREADS / hardware default
  state.SetItemsProcessed(state.iterations() * cfg.num_runs);
}
BENCHMARK(BM_DefectEval)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

// Cost of the deep copy each evaluation worker makes.
void BM_ModelClone(benchmark::State& state) {
  auto net = make_small_cnn(SmallCnnConfig{.image_size = 16, .width = 8, .classes = 10});
  for (auto _ : state) {
    auto copy = net->clone();
    benchmark::DoNotOptimize(copy.get());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ModelClone);

}  // namespace

int main(int argc, char** argv) {
  run_gemm_sweep(env_string("FTPIM_BENCH_JSON", "BENCH_gemm.json"));
  const bool run_suite = argc > 1 || env_int("FTPIM_MICROBENCH", 0) != 0;
  if (run_suite) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  return 0;
}
