// Shared implementation for the two Table I benches (CIFAR-10/ResNet-20 and
// CIFAR-100/ResNet-32 rows of the paper).
//
// The defect sweeps inside sweep_rates fan the Monte-Carlo device runs out
// over FTPIM_THREADS workers (see evaluate_under_defects); the preamble
// prints the active thread count. Table numbers are bit-identical at any
// thread count.
#pragma once

#include <cstdio>
#include <map>
#include <memory>

#include "bench_common.hpp"

namespace ftpim::bench {

struct Table1Result {
  std::vector<double> test_rates;
  std::vector<double> baseline_accs;                      ///< fractions
  std::map<double, std::vector<double>> one_shot;         ///< train rate -> accs
  std::map<double, std::vector<double>> progressive;
  double acc_pretrain = 0.0;
};

inline Table1Result run_table1(Experiment& exp, const std::string& title) {
  print_preamble(title, exp);
  const std::vector<double> test_rates = test_rates_for(exp.config().scale);
  const std::vector<double> train_rates = train_rates_for(exp.config().scale);

  Timer timer;
  auto pretrained = exp.fresh_model();
  Table1Result result;
  result.test_rates = test_rates;
  result.acc_pretrain = exp.pretrain(*pretrained);
  std::printf("pretrained baseline: acc=%.2f%% (%.0fs)\n", result.acc_pretrain * 100.0,
              timer.seconds());

  TablePrinter table(title + " — Acc_defect (%) vs target testing stuck-at-fault rate",
                     rate_headers("Method / training P_sa^T", test_rates));

  result.baseline_accs = exp.sweep_rates(*pretrained, test_rates);
  table.add_row("Baseline Pretrained", to_percent(result.baseline_accs));

  for (const double train_rate : train_rates) {
    for (const FtScheme scheme : {FtScheme::kOneShot, FtScheme::kProgressive}) {
      timer.reset();
      auto model = exp.ft_variant(*pretrained, scheme, train_rate);
      const std::vector<double> accs = exp.sweep_rates(*model, test_rates);
      const char* tag = scheme == FtScheme::kOneShot ? "One-Shot" : "Progressive";
      char label[64];
      std::snprintf(label, sizeof(label), "%s P_sa^T=%g", tag, train_rate);
      table.add_row(label, to_percent(accs));
      std::printf("  %s trained+swept in %.0fs (clean acc %.2f%%)\n", label, timer.seconds(),
                  accs.front() * 100.0);
      auto& bucket = scheme == FtScheme::kOneShot ? result.one_shot : result.progressive;
      bucket[train_rate] = accs;
    }
  }

  std::printf("\n%s\n", table.render(/*highlight_top=*/3).c_str());
  return result;
}

/// Asserts the paper's Table I qualitative claims on the measured grid.
inline void check_table1_shape(const Table1Result& r) {
  ShapeCheck check;
  const auto& rates = r.test_rates;

  // Find a mid/high testing-rate column (>= 0.01) present in the sweep.
  std::size_t hi_col = rates.size() - 1;
  std::size_t mid_col = 0;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    if (rates[i] >= 0.01) {
      mid_col = i;
      break;
    }
  }

  // Claim 1: every FT model beats the baseline at the mid rate.
  bool ft_beats_baseline = true;
  for (const auto& bucket : {r.one_shot, r.progressive}) {
    for (const auto& [rate, accs] : bucket) {
      if (accs[mid_col] <= r.baseline_accs[mid_col]) ft_beats_baseline = false;
    }
  }
  check.expect(ft_beats_baseline,
               "all FT-trained models beat the pretrained baseline at testing rate >= 0.01");

  // Claim 2: baseline collapses — monotone accuracy loss with testing rate
  // (allowing noise-level 2pt inversions).
  bool baseline_degrades = true;
  for (std::size_t i = 1; i < r.baseline_accs.size(); ++i) {
    if (r.baseline_accs[i] > r.baseline_accs[i - 1] + 0.02) baseline_degrades = false;
  }
  check.expect(baseline_degrades, "baseline accuracy degrades with testing failure rate");

  // Claim 3: at the highest testing rate, larger training P_sa^T helps: the
  // largest trained rate outperforms the smallest, per scheme.
  for (const auto* bucket : {&r.one_shot, &r.progressive}) {
    if (bucket->size() >= 2) {
      const auto& lo = bucket->begin()->second;
      const auto& hi = bucket->rbegin()->second;
      check.expect(hi[hi_col] >= lo[hi_col],
                   "larger training P_sa^T wins at the highest testing rate");
    }
  }

  // Claim 4: FT training roughly preserves clean accuracy (within 5 points)
  // for the smaller training rates.
  if (!r.one_shot.empty()) {
    const auto& accs = r.one_shot.begin()->second;
    check.expect(accs[0] + 0.05 >= r.acc_pretrain,
                 "smallest-rate FT model keeps clean accuracy within 5 points of pretrain");
  }

  // Claim 5: progressive >= one-shot at the highest testing rate for the
  // largest training rate (paper: progressive generally better at high rates;
  // tolerate 2pt noise).
  if (!r.one_shot.empty() && !r.progressive.empty()) {
    const auto& os = r.one_shot.rbegin()->second;
    const auto& pg = r.progressive.rbegin()->second;
    check.expect(pg[hi_col] + 0.02 >= os[hi_col],
                 "progressive >= one-shot (2pt tolerance) at the highest testing rate");
  }
  check.summary();
}

}  // namespace ftpim::bench
