// Ablation A3: progressive ramp shape. The paper trains with an ascending
// P_sa list; this bench compares the default geometric ramp against a linear
// ramp, a two-stage ramp, and a descending (anti-curriculum) ramp, all at the
// same epoch budget and target P_sa^T = 0.1.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace ftpim;
  using namespace ftpim::bench;
  Experiment exp(ExperimentConfig{.classes = 10,
                                  .resnet_depth = 20,
                                  .scale = run_scale(),
                                  .seed = static_cast<std::uint64_t>(env_int("FTPIM_SEED", 2030)),
                                  .verbose = false});
  print_preamble("Ablation A3 (progressive schedule shape)", exp);

  auto pretrained = exp.fresh_model();
  const double clean = exp.pretrain(*pretrained);
  std::printf("pretrained acc=%.2f%%\n", clean * 100.0);

  const double target = 0.1;
  const std::vector<double> rates = {0, 0.01, 0.05, 0.1, 0.2};
  TablePrinter table("Acc (%) after progressive FT training to P_sa^T=0.1",
                     rate_headers("Ramp", rates));

  struct Ramp {
    const char* name;
    std::vector<double> levels;
  };
  std::vector<Ramp> ramps{Ramp{"geometric /8 /4 /2 /1", default_progressive_ramp(target)},
                          Ramp{"linear .025 .05 .075 .1", {0.025, 0.05, 0.075, 0.1}},
                          Ramp{"flat (one-shot x4)", {target, target, target, target}}};
  if (run_scale().name != "quick") {
    ramps.push_back(Ramp{"two-stage .05 .1", {0.05, target, target, target}});
  }
  std::map<std::string, std::vector<double>> curves;
  for (const Ramp& ramp : ramps) {
    auto model = exp.clone_model(*pretrained);
    FtTrainConfig ft;
    ft.base = exp.base_train_config();
    ft.base.sgd.lr = 0.05f;  // retraining regime (matches Experiment::ft_variant)
    ft.base.epochs = std::max(1, ft.base.epochs / 4);  // same budget as 4-stage ramps
    ft.scheme = FtScheme::kProgressive;
    ft.target_p_sa = target;
    ft.progressive_levels = ramp.levels;
    ft.fault_seed = 888;
    FaultTolerantTrainer trainer(*model, exp.train_data(), ft);
    trainer.run();
    const std::vector<double> accs = exp.sweep_rates(*model, rates);
    table.add_row(ramp.name, to_percent(accs));
    curves[ramp.name] = accs;
    std::printf("  %s done (clean %.2f%%)\n", ramp.name, accs.front() * 100.0);
  }
  std::printf("\n%s\n", table.render().c_str());

  ShapeCheck check;
  DefectEvalConfig cfg = exp.defect_eval_config();
  const double baseline_at_target =
      evaluate_under_defects(*pretrained, exp.test_data(), target, cfg).mean_acc;
  bool all_beat = true;
  for (const auto& [name, accs] : curves) {
    if (accs[3] <= baseline_at_target) all_beat = false;
  }
  check.expect(all_beat, "every ramp beats the non-FT baseline at the target rate");
  // Ascending ramps should preserve clean accuracy at least as well as flat.
  const double best_ascending_clean =
      std::max(curves["geometric /8 /4 /2 /1"][0], curves["linear .025 .05 .075 .1"][0]);
  check.expect(best_ascending_clean + 0.02 >= curves["flat (one-shot x4)"][0],
               "an ascending ramp keeps clean accuracy at least on par with flat (2pt tol)");
  check.summary();
  return 0;
}
