// ABFT checksum-column overhead and detection sensitivity (BENCH_abft.json).
//
// Two questions, answered at deployment-realistic shapes:
//
//   1. What does online verification COST? mvm_batch throughput with
//      checksums off vs on, for the float engine (one checksum column,
//      eps-bound compare) and the quantized engine (base-L digit columns,
//      integer-exact compare) at 128- and 256-bitline tiles and both ADC
//      settings. Acceptance: the quantized path pays <= 10% — the digit
//      columns ride in the same packed kernel call, so the overhead is a
//      few extra bitlines plus the residual comparison.
//   2. What does it BUY? Detection rate within a single batch as a function
//      of post-baseline stuck-at fault rate, across independently-drawn
//      dies — the data behind EXPERIMENTS.md's detection-latency entry.
#include <algorithm>
#include <cstdio>
#include <ctime>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/common/config.hpp"
#include "src/common/parallel.hpp"
#include "src/common/rng.hpp"
#include "src/common/timer.hpp"
#include "src/reram/crossbar_engine.hpp"
#include "src/reram/fault_model.hpp"
#include "src/reram/qinfer/quantized_engine.hpp"
#include "src/tensor/kernels/dispatch.hpp"
#include "src/tensor/tensor.hpp"

namespace {

using namespace ftpim;

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  Tensor t(std::move(shape));
  Rng rng(seed);
  for (std::int64_t i = 0; i < t.numel(); ++i) t[i] = rng.normal();
  return t;
}

struct OverheadPoint {
  double gops_off = 0.0;
  double gops_on = 0.0;
  double overhead_pct = 0.0;
};

/// Process CPU time: on a virtualized host, hypervisor steal inflates wall
/// clocks by tens of percent in bursts but is excluded from the process
/// clock, which tracks only cycles this process actually executed. The
/// sweeps below are single-threaded, so process CPU time is the right base.
double cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// Measures checksums-off vs checksums-on throughput INTERLEAVED over many
/// short windows, timed with the process CPU clock, and reports
/// min(on) / min(off). Residual noise (frequency drift, cache pollution by
/// other guests) only ever ADDS to a window, so the minimum over many short
/// windows is the cleanest estimate of each variant's true cost, and
/// interleaving keeps slow drift from loading one side. GOP/s convention
/// matches bench_qgemm: 1 op = one multiply-accumulate of the data matrix
/// (checksum columns are overhead, not work).
template <typename OffFn, typename OnFn>
OverheadPoint measure_overhead(std::int64_t m, std::int64_t n, std::int64_t k,
                               const OffFn& off, const OnFn& on) {
  const double ops = 2.0 * static_cast<double>(m) * static_cast<double>(n) *
                     static_cast<double>(k);
  Timer warm;
  off();
  on();
  const double once = std::max(warm.seconds() / 2.0, 1e-7);
  const int reps = std::max(1, static_cast<int>(0.01 / once));
  constexpr int kTrials = 50;
  double off_min = 1e300, on_min = 1e300;
  for (int trial = 0; trial < kTrials; ++trial) {
    const double t0 = cpu_seconds();
    for (int r = 0; r < reps; ++r) off();
    const double t1 = cpu_seconds();
    for (int r = 0; r < reps; ++r) on();
    const double t2 = cpu_seconds();
    off_min = std::min(off_min, (t1 - t0) / reps);
    on_min = std::min(on_min, (t2 - t1) / reps);
  }
  OverheadPoint p;
  p.gops_off = ops / off_min * 1e-9;
  p.gops_on = ops / on_min * 1e-9;
  p.overhead_pct = (on_min / off_min - 1.0) * 100.0;
  return p;
}

/// Up to four independent measurement passes, keeping the one that saw the
/// least noise. Contention on a shared host arrives in multi-second bursts
/// that inflate every window of a pass; a burst is unlikely to cover ALL
/// spaced passes, so the minimum over passes estimates the quiet-host cost.
/// Stops early once a pass lands comfortably clean — extra passes from
/// there only add runtime.
template <typename OffFn, typename OnFn>
OverheadPoint measure_overhead_passes(std::int64_t m, std::int64_t n, std::int64_t k,
                                      const OffFn& off, const OnFn& on) {
  OverheadPoint best;
  for (int pass = 0; pass < 4; ++pass) {
    const OverheadPoint p = measure_overhead(m, n, k, off, on);
    if (pass == 0 || p.overhead_pct < best.overhead_pct) best = p;
    if (best.overhead_pct <= 9.0) break;
  }
  return best;
}

void run_overhead_sweep(bench::BenchJsonWriter& json, bench::ShapeCheck& check) {
  const std::int64_t batch = 64, out = 256, in = 512;
  const Tensor w = random_tensor(Shape{out, in}, 11);
  const Tensor x = random_tensor(Shape{batch, in}, 13);
  std::vector<float> y(static_cast<std::size_t>(batch * out));

  set_num_threads(1);
  std::printf("=== mvm_batch overhead: checksums off -> on (batch=%lld, %lldx%lld, "
              "single thread) ===\n",
              static_cast<long long>(batch), static_cast<long long>(out),
              static_cast<long long>(in));
  std::printf("%24s %10s %12s %12s %10s\n", "engine", "tile_cols", "off GOP/s", "on GOP/s",
              "overhead");

  for (const std::int64_t tile_cols : {std::int64_t{128}, std::int64_t{256}}) {
    // Float engine: one conductance-sum checksum column per tile.
    {
      CrossbarEngineConfig fc;
      fc.tile_cols = tile_cols;
      fc.quant_levels = 16;
      const CrossbarEngine off_eng(w, fc);
      fc.abft.enabled = true;
      const CrossbarEngine on_eng(w, fc);
      const OverheadPoint p = measure_overhead_passes(
          batch, out, in, [&] { off_eng.mvm_batch(x.data(), batch, y.data()); },
          [&] { on_eng.mvm_batch(x.data(), batch, y.data()); });
      std::printf("%24s %10lld %12.2f %12.2f %9.1f%%\n", "float",
                  static_cast<long long>(tile_cols), p.gops_off, p.gops_on, p.overhead_pct);
      json.point()
          .str("engine", "float")
          .num("tile_cols", static_cast<double>(tile_cols))
          .num("gops_off", p.gops_off)
          .num("gops_on", p.gops_on)
          .num("overhead_pct", p.overhead_pct);
    }
    // Quantized engine: base-L digit columns in the packed kernel call.
    for (const int adc_bits : {0, 8}) {
      qinfer::QuantizedEngineConfig qc;
      qc.tile_cols = tile_cols;
      qc.levels = 16;
      qc.adc.bits = adc_bits;
      const qinfer::QuantizedCrossbarEngine off_eng(w, qc);
      qc.abft.enabled = true;
      const qinfer::QuantizedCrossbarEngine on_eng(w, qc);
      const OverheadPoint p = measure_overhead_passes(
          batch, out, in, [&] { off_eng.mvm_batch(x.data(), batch, y.data()); },
          [&] { on_eng.mvm_batch(x.data(), batch, y.data()); });
      char name[32];
      std::snprintf(name, sizeof(name), "quantized_adc%d", adc_bits);
      std::printf("%24s %10lld %12.2f %12.2f %9.1f%%\n", name,
                  static_cast<long long>(tile_cols), p.gops_off, p.gops_on, p.overhead_pct);
      json.point()
          .str("engine", name)
          .num("tile_cols", static_cast<double>(tile_cols))
          .num("gops_off", p.gops_off)
          .num("gops_on", p.gops_on)
          .num("overhead_pct", p.overhead_pct);
      char claim[96];
      std::snprintf(claim, sizeof(claim), "%s tile_cols=%lld overhead %.1f%% <= 10%%", name,
                    static_cast<long long>(tile_cols), p.overhead_pct);
      check.expect(p.overhead_pct <= 10.0, claim);
    }
  }
  set_num_threads(0);
}

void run_detection_sweep(bench::BenchJsonWriter& json, bench::ShapeCheck& check) {
  // Post-baseline faults: the engine baselines CLEAN at construction, each
  // die's stuck-at map lands afterwards (no rebaseline), and one batch of
  // activations decides whether the checksums ring.
  const std::int64_t batch = 32, out = 256, in = 512;
  const int dies = 10;
  const Tensor w = random_tensor(Shape{out, in}, 17);
  const Tensor x = random_tensor(Shape{batch, in}, 19);
  std::vector<float> y(static_cast<std::size_t>(batch * out));

  qinfer::QuantizedEngineConfig qc;
  qc.levels = 16;
  qc.adc.bits = 8;
  qc.abft.enabled = true;
  qinfer::QuantizedCrossbarEngine eng(w, qc);

  std::printf("\n=== single-batch detection rate vs post-baseline fault rate "
              "(8-bit ADC, %d dies) ===\n", dies);
  std::printf("%10s %12s %14s\n", "p_sa", "detected", "mean tiles");
  double rate_at_1pct = 0.0;
  for (const double p_sa : {1e-4, 3e-4, 1e-3, 3e-3, 1e-2}) {
    int detected = 0;
    std::int64_t flagged = 0;
    for (int die = 0; die < dies; ++die) {
      eng.clear_defects();
      eng.apply_device_defects(StuckAtFaultModel(p_sa), /*master_seed=*/23,
                               static_cast<std::uint64_t>(die));
      eng.mvm_batch(x.data(), batch, y.data());
      const abft::TileFaultReport rep = eng.take_abft_report();
      detected += rep.clean() ? 0 : 1;
      flagged += rep.flagged_tiles();
    }
    const double rate = static_cast<double>(detected) / dies;
    const double mean_tiles = static_cast<double>(flagged) / dies;
    if (p_sa == 1e-2) rate_at_1pct = rate;
    std::printf("%10g %11.0f%% %14.1f\n", p_sa, rate * 100.0, mean_tiles);
    json.point()
        .str("engine", "quantized_adc8_detection")
        .num("p_sa", p_sa)
        .num("dies", dies)
        .num("detection_rate", rate)
        .num("mean_flagged_tiles", mean_tiles);
  }
  check.expect(rate_at_1pct == 1.0, "every die at p_sa=1e-2 is flagged within one batch");
}

}  // namespace

int main() {
  bench::BenchJsonWriter json("abft_overhead");
  json.meta()
      .num("threads", num_threads())
      .str("dispatch", kernels::kernel_level_name(kernels::active_kernel_level()));
  bench::ShapeCheck check;
  run_overhead_sweep(json, check);
  run_detection_sweep(json, check);
  std::printf("\n");
  check.summary();
  json.write(env_string("FTPIM_BENCH_JSON", "BENCH_abft.json"));
  return check.failed == 0 ? 0 : 1;
}
