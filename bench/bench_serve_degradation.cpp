// Self-healing under wear: throughput and tail latency as replicas age,
// get quarantined by canary checks, and are repaired from the pristine
// source model.
//
// Three fleet policies are swept over the same request stream:
//   no-aging    — devices never wear out (upper bound),
//   age-only    — defects accumulate per served batch, nobody intervenes,
//   self-heal   — canary batches score each replica; quarantined replicas
//                 are re-cloned with a fresh defect map before serving resumes.
// The interesting columns are canary accuracy (how wrong the un-healed fleet
// gets) and p99 (what repair pauses cost). Repairs show up as occasional
// slow batches; un-repaired aging shows up as silently wrong answers.
#include <cstdio>
#include <future>
#include <string>
#include <vector>

#include "src/common/config.hpp"
#include "src/common/parallel.hpp"
#include "src/common/timer.hpp"
#include "src/core/evaluator.hpp"
#include "src/data/synthetic.hpp"
#include "src/models/small_cnn.hpp"
#include "src/serve/inference_server.hpp"

namespace {

using namespace ftpim;
using namespace ftpim::serve;

struct PolicyResult {
  std::string name;
  double reqs_per_sec = 0.0;
  double p50_ms = 0.0, p99_ms = 0.0;
  double canary_acc = 1.0;  ///< canary pass rate over the run (1.0 if none ran)
  std::int64_t aged_cells = 0;
  std::int64_t quarantines = 0;
  std::int64_t repairs = 0;
};

enum class Policy { kNoAging, kAgeOnly, kSelfHeal };

PolicyResult run_policy(const Module& model, const Dataset& data, Policy policy,
                        int total_requests) {
  ServerConfig cfg;
  cfg.queue_capacity = 1024;
  cfg.batching.max_batch_size = 8;
  cfg.batching.max_linger_ns = 500'000;  // 0.5ms
  cfg.pool.num_replicas = 2;
  cfg.pool.p_sa = 0.002;  // low ship-time rate: degradation should come from wear
  cfg.pool.seed = 7;
  if (policy != Policy::kNoAging) {
    // Aggressive wear so the effect is visible within one bench run: every
    // 8 served batches, 5% of the surviving cells fail.
    cfg.aging.p_new_per_interval = 0.05;
    cfg.aging.interval_batches = 8;
    cfg.aging.seed = 99;
  }
  // Canaries run under every policy so the accuracy column is comparable;
  // only the self-heal policy acts on the verdict.
  cfg.health.canary_every_batches = 8;
  cfg.health.canary_samples = 8;
  cfg.health.window = 32;
  cfg.health.min_samples = 8;
  cfg.health.quarantine_below = 0.80;
  cfg.health.repair_on_quarantine = policy == Policy::kSelfHeal;
  InferenceServer server(model, cfg);
  server.start();

  std::vector<std::future<InferenceResult>> futures;
  futures.reserve(static_cast<std::size_t>(total_requests));
  Timer wall;
  for (int i = 0; i < total_requests; ++i) {
    futures.push_back(server.submit(data.get(i % data.size()).image));
  }
  for (auto& f : futures) (void)f.get();
  server.drain();
  const double secs = wall.seconds();
  server.stop();

  const ServerStats stats = server.stats();
  PolicyResult out;
  out.name = policy == Policy::kNoAging ? "no-aging"
             : policy == Policy::kAgeOnly ? "age-only"
                                          : "self-heal";
  out.reqs_per_sec = static_cast<double>(stats.served) / secs;
  out.p50_ms = static_cast<double>(stats.latency.p50_ns()) * 1e-6;
  out.p99_ms = static_cast<double>(stats.latency.p99_ns()) * 1e-6;
  const std::int64_t canary_total = stats.canary_batches * cfg.health.canary_samples;
  if (canary_total > 0) {
    out.canary_acc = 1.0 - static_cast<double>(stats.canary_failures) /
                               static_cast<double>(canary_total);
  }
  out.aged_cells = stats.aged_cells;
  out.quarantines = stats.quarantines;
  out.repairs = stats.repairs;
  return out;
}

}  // namespace

int main() {
  const RunScale scale = run_scale();
  const int total_requests = env_int("FTPIM_REQS", scale.name == "quick" ? 512 : 2048);

  std::printf("=== serve degradation: aging vs self-healing fleet ===\n");
  std::printf("model: SmallCNN | img: %dx%d | requests: %d | replicas: 2 | scale: %s | "
              "threads: %d\n\n",
              scale.image_size, scale.image_size, total_requests, scale.name.c_str(),
              ftpim::num_threads());

  SynthVisionConfig data_cfg;
  data_cfg.num_classes = 10;
  data_cfg.image_size = scale.image_size;
  data_cfg.samples = 256;
  const auto data = make_synthvision(data_cfg, 3);

  SmallCnnConfig model_cfg;
  model_cfg.image_size = scale.image_size;
  const auto model = make_small_cnn(model_cfg);

  std::printf("%10s %10s %9s %9s %11s %11s %11s %8s\n", "policy", "req/s", "p50(ms)",
              "p99(ms)", "canary-acc", "aged-cells", "quarantines", "repairs");
  for (const Policy policy : {Policy::kNoAging, Policy::kAgeOnly, Policy::kSelfHeal}) {
    const PolicyResult r = run_policy(*model, *data, policy, total_requests);
    std::printf("%10s %10.0f %9.3f %9.3f %11.3f %11lld %11lld %8lld\n", r.name.c_str(),
                r.reqs_per_sec, r.p50_ms, r.p99_ms, r.canary_acc,
                static_cast<long long>(r.aged_cells), static_cast<long long>(r.quarantines),
                static_cast<long long>(r.repairs));
  }
  return 0;
}
