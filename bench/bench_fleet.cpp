// Fleet-at-scale sweep throughput: how fast the fault-lifecycle simulator
// (src/fleet) pushes a large virtual fleet to its horizon, and what the four
// repair policies buy in survival vs maintenance cost on an identical fleet.
//
// The table is the policy comparison DESIGN.md §15 describes (survival,
// mean lifetime, maintenance bill per policy on bit-identical devices); the
// JSON artifact records the perf trajectory — wall seconds and device-ticks
// per second per policy — so fleet-scale regressions show up in diffs
// (BENCH_fleet.json is a committed artifact like BENCH_serve.json).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/common/config.hpp"
#include "src/common/parallel.hpp"
#include "src/common/timer.hpp"
#include "src/core/table_printer.hpp"
#include "src/fleet/fleet_simulator.hpp"
#include "src/models/mlp.hpp"

namespace {

using namespace ftpim;
using namespace ftpim::fleet;

FleetConfig sweep_config(int devices, std::int64_t ticks, RepairPolicyKind policy) {
  FleetConfig cfg;
  cfg.num_devices = devices;
  cfg.ticks = ticks;
  cfg.sample_shape = {16};
  cfg.probe_samples = 16;
  cfg.accuracy_floor = 0.55;
  cfg.interval_batches = 16;
  cfg.p_transient_per_tick = 0.002;
  cfg.seed = 2024;
  cfg.profile.p_sa_min = 0.01;
  cfg.profile.p_sa_max = 0.08;
  cfg.profile.aging_min = 0.001;
  cfg.profile.aging_max = 0.01;
  cfg.profile.traffic_min = 8;
  cfg.profile.traffic_max = 32;
  cfg.profile.quantized_fraction = 0.75;
  cfg.policy = policy;
  cfg.policy_config.refresh_every_ticks = 4;
  cfg.policy_config.max_scrub_retries = 1;
  cfg.quantized.adc.bits = 0;
  return cfg;
}

struct PolicyResult {
  FleetSummary summary;
  double wall_s = 0.0;
  double device_ticks_per_s = 0.0;
};

}  // namespace

int main() {
  const RunScale scale = run_scale();
  const int devices = env_int("FTPIM_FLEET_DEVICES", scale.name == "quick" ? 256 : 1000);
  const auto ticks = static_cast<std::int64_t>(env_int("FTPIM_FLEET_TICKS", 16));

  std::printf("=== fleet lifecycle sweep: %d devices x %lld ticks per policy ===\n", devices,
              static_cast<long long>(ticks));
  std::printf("model: MLP 16-24-4 | scale: %s | threads: %d\n\n", scale.name.c_str(),
              num_threads());

  const auto model = make_mlp({16, 24, 4}, 7);

  bench::BenchJsonWriter json("fleet");
  json.meta()
      .num("threads", num_threads())
      .num("devices", devices)
      .num("ticks", static_cast<double>(ticks))
      .str("scale", scale.name);

  TablePrinter table("policy comparison (identical fleet per row)",
                     {"policy", "surv%", "life", "repairs", "scrubs", "cost", "p50acc", "wall_s",
                      "devtick/s"});
  std::vector<PolicyResult> results;
  for (const RepairPolicyKind policy : kAllRepairPolicies) {
    FleetSimulator sim(*model, sweep_config(devices, ticks, policy));
    Timer wall;
    PolicyResult res;
    res.summary = sim.run();
    res.wall_s = wall.seconds();
    res.device_ticks_per_s =
        static_cast<double>(devices) * static_cast<double>(ticks) / res.wall_s;
    results.push_back(res);

    table.add_row(to_string(policy),
                  {res.summary.survival_fraction * 100.0, res.summary.mean_lifetime_ticks,
                   static_cast<double>(res.summary.repairs),
                   static_cast<double>(res.summary.scrubs), res.summary.total_cost,
                   res.summary.final_acc_p50, res.wall_s, res.device_ticks_per_s});
    json.point()
        .str("policy", to_string(policy))
        .num("devices", devices)
        .num("ticks", static_cast<double>(ticks))
        .num("survival_fraction", res.summary.survival_fraction)
        .num("mean_lifetime_ticks", res.summary.mean_lifetime_ticks)
        .num("repairs", static_cast<double>(res.summary.repairs))
        .num("scrubs", static_cast<double>(res.summary.scrubs))
        .num("total_cost", res.summary.total_cost)
        .num("wall_seconds", res.wall_s)
        .num("device_ticks_per_sec", res.device_ticks_per_s);
  }
  std::printf("%s\n", table.render(0, 2).c_str());

  // Shape checks: the qualitative policy ordering the fleet story predicts.
  bench::ShapeCheck check;
  const FleetSummary& never = results[0].summary;       // kNeverRepair
  const FleetSummary& gated = results[1].summary;       // kCanaryGated
  const FleetSummary& scheduled = results[2].summary;   // kScheduledRefresh
  const FleetSummary& detection = results[3].summary;   // kDetectionDrivenScrub
  check.expect(never.total_cost == 0.0, "never_repair spends nothing on maintenance");
  check.expect(never.survival_fraction < 1.0, "unmaintained fleet loses devices");
  check.expect(gated.survival_fraction >= never.survival_fraction,
               "canary-gated repair survives at least the unmaintained fleet");
  check.expect(gated.mean_lifetime_ticks >= never.mean_lifetime_ticks,
               "repairs extend mean device lifetime");
  check.expect(scheduled.scrubs > 0, "scheduled policy actually refreshes");
  check.expect(detection.detections > 0, "quantized devices ring under faults");
  check.summary();

  json.write(env_string("FTPIM_BENCH_JSON", "BENCH_fleet.json"));
  return check.failed == 0 ? 0 : 1;
}
