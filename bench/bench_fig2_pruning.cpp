// Reproduces Figure 2: accuracy of the dense model and pruned models
// (one-shot magnitude and ADMM, 40% and 70% sparsity, no FT training) under
// different testing failure rates — showing that sparser models are more
// fragile and that the two pruning families behave alike at equal sparsity.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "src/core/trainer.hpp"
#include "src/prune/admm_pruner.hpp"
#include "src/prune/magnitude_pruner.hpp"
#include "src/prune/sparsity.hpp"

namespace {

using namespace ftpim;
using namespace ftpim::bench;

void masked_finetune(Experiment& exp, Sequential& model, const std::vector<PruneMask>& masks) {
  TrainConfig tc = exp.base_train_config();
  tc.sgd.lr = 0.01f;
  Trainer trainer(model, exp.train_data(), tc);
  for (const PruneMask& m : masks) trainer.optimizer().set_mask(m.param, m.mask);
  trainer.run();
}

std::unique_ptr<Sequential> one_shot_pruned(Experiment& exp, Sequential& pretrained,
                                            double sparsity) {
  auto model = exp.clone_model(pretrained);
  const auto masks = magnitude_prune(*model, MagnitudePruneConfig{.sparsity = sparsity});
  masked_finetune(exp, *model, masks);
  return model;
}

std::unique_ptr<Sequential> admm_pruned(Experiment& exp, Sequential& pretrained, double sparsity) {
  auto model = exp.clone_model(pretrained);
  TrainConfig tc = exp.base_train_config();
  tc.sgd.lr = 0.01f;
  AdmmPruner pruner(*model, AdmmConfig{.sparsity = sparsity, .rho = 1e-2f});
  {
    Trainer trainer(*model, exp.train_data(), tc);
    TrainHooks hooks;
    hooks.after_backward = [&pruner](int, std::int64_t) { pruner.regularize_grads(); };
    hooks.after_epoch = [&pruner](int, float) { pruner.dual_update(); };
    trainer.set_hooks(hooks);
    trainer.run();
  }
  const auto masks = pruner.finalize();
  masked_finetune(exp, *model, masks);
  return model;
}

}  // namespace

int main() {
  // Figure 2 shows both datasets; one run covers the CIFAR-100/ResNet-32
  // panel by default (set FTPIM_FIG2_C10=1 for the CIFAR-10 panel).
  const bool c10 = env_int("FTPIM_FIG2_C10", 0) != 0;
  Experiment exp(ExperimentConfig{.classes = c10 ? 10 : 100,
                                  .resnet_depth = c10 ? 20 : 32,
                                  .scale = run_scale(),
                                  .seed = static_cast<std::uint64_t>(env_int("FTPIM_SEED", 2027)),
                                  .verbose = false});
  print_preamble("Figure 2 (dense vs pruned under SAF, no FT training)", exp);
  const std::vector<double> rates = test_rates_for(exp.config().scale);

  Timer timer;
  auto dense = exp.fresh_model();
  const double dense_acc = exp.pretrain(*dense);
  std::printf("dense acc=%.2f%% (%.0fs)\n", dense_acc * 100.0, timer.seconds());

  TablePrinter table("Figure 2 — accuracy (%) vs testing failure rate",
                     rate_headers("Model", rates));
  const std::vector<double> dense_curve = exp.sweep_rates(*dense, rates);
  table.add_row("Dense", to_percent(dense_curve));

  std::map<std::string, std::vector<double>> curves;
  struct Variant {
    const char* name;
    bool admm;
    double sparsity;
  };
  for (const Variant v : {Variant{"One-Shot 40%", false, 0.4}, Variant{"One-Shot 70%", false, 0.7},
                          Variant{"ADMM 40%", true, 0.4}, Variant{"ADMM 70%", true, 0.7}}) {
    timer.reset();
    auto model = v.admm ? admm_pruned(exp, *dense, v.sparsity)
                        : one_shot_pruned(exp, *dense, v.sparsity);
    const std::vector<double> curve = exp.sweep_rates(*model, rates);
    table.add_row(v.name, to_percent(curve));
    curves[v.name] = curve;
    std::printf("  %s: clean acc %.2f%%, sparsity %.1f%% (%.0fs)\n", v.name,
                curve.front() * 100.0, model_sparsity(*model) * 100.0, timer.seconds());
  }
  std::printf("\n%s\n", table.render().c_str());

  ShapeCheck check;
  // Mid-rate column for fragility comparison.
  std::size_t mid = 0;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    if (rates[i] >= 0.005) {
      mid = i;
      break;
    }
  }
  check.expect(curves["One-Shot 70%"][mid] <= curves["One-Shot 40%"][mid] + 0.02 &&
                   curves["ADMM 70%"][mid] <= curves["ADMM 40%"][mid] + 0.02,
               "higher sparsity is at least as fragile at testing rate >= 0.005 (2pt tol)");
  check.expect(curves["One-Shot 70%"][mid] <= dense_curve[mid] + 0.02,
               "70% pruned is at least as fragile as dense (2pt tol)");
  const double same_sparsity_gap =
      std::abs(curves["One-Shot 70%"][mid] - curves["ADMM 70%"][mid]);
  check.expect(same_sparsity_gap < 0.15,
               "equal-sparsity pruning families behave alike (gap < 15pt)");
  bool dense_degrades = dense_curve.back() < dense_curve.front();
  check.expect(dense_degrades, "dense accuracy collapses at high failure rates");
  check.summary();
  return 0;
}
