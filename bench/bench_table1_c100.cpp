// Reproduces Table I (bottom): CIFAR-100, ResNet-32.
#include "table1_runner.hpp"

int main() {
  using namespace ftpim;
  using namespace ftpim::bench;
  // Note: at quick scale the 100-way task trains on few samples per class,
  // so absolute accuracy is far below the paper's 75% — the collapse-and-
  // rescue shape is the reproduction target (raise FTPIM_TRAIN to improve).
  const RunScale scale = run_scale();
  Experiment exp(ExperimentConfig{.classes = 100,
                                  .resnet_depth = 32,
                                  .scale = scale,
                                  .seed = static_cast<std::uint64_t>(env_int("FTPIM_SEED", 2025)),
                                  .verbose = false});
  const Table1Result result = run_table1(exp, "Table I (CIFAR-100, ResNet-32)");
  check_table1_shape(result);
  return 0;
}
