// Serving-layer throughput sweep: batch size x replica count.
//
// For each grid point, an InferenceServer over an (untrained, seeded)
// SmallCNN serves FTPIM_REQS single-sample requests fired from FTPIM_CLIENTS
// client threads, and the harness reports req/s, achieved batch fill, and
// p50/p95/p99 latency. Larger max batch amortizes per-forward overhead
// (im2col + GEMM setup) so req/s should rise with batch size; replicas add
// worker-level parallelism until the host cores saturate.
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/common/config.hpp"
#include "src/common/parallel.hpp"
#include "src/common/timer.hpp"
#include "src/data/synthetic.hpp"
#include "src/models/small_cnn.hpp"
#include "src/serve/inference_server.hpp"
#include "src/tensor/kernels/dispatch.hpp"

namespace {

using namespace ftpim;
using namespace ftpim::serve;

struct SweepPoint {
  std::int64_t batch;
  int replicas;
  double reqs_per_sec;
  double fill;
  double p50_ms, p95_ms, p99_ms;
};

SweepPoint run_point(const Module& model, const Dataset& data, std::int64_t max_batch,
                     int replicas, int clients, int total_requests,
                     ReplicaEngine engine = ReplicaEngine::kFloat, bool abft = false) {
  ServerConfig cfg;
  cfg.queue_capacity = 1024;
  cfg.batching.max_batch_size = max_batch;
  cfg.batching.max_linger_ns = 500'000;  // 0.5ms
  cfg.pool.num_replicas = replicas;
  cfg.pool.p_sa = 0.01;
  cfg.pool.seed = 7;
  cfg.pool.engine = engine;
  cfg.pool.quantized.abft.enabled = abft;
  InferenceServer server(model, cfg);
  server.start();

  const int per_client = total_requests / clients;
  Timer wall;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::vector<std::future<InferenceResult>> futures;
      futures.reserve(static_cast<std::size_t>(per_client));
      for (int i = 0; i < per_client; ++i) {
        const std::int64_t idx =
            (static_cast<std::int64_t>(c) * per_client + i) % data.size();
        futures.push_back(server.submit(data.get(idx).image));
      }
      for (auto& f : futures) (void)f.get();
    });
  }
  for (std::thread& t : threads) t.join();
  server.drain();
  const double secs = wall.seconds();
  server.stop();

  const ServerStats stats = server.stats();
  SweepPoint point;
  point.batch = max_batch;
  point.replicas = replicas;
  point.reqs_per_sec = static_cast<double>(stats.served) / secs;
  point.fill = stats.mean_batch_fill();
  point.p50_ms = static_cast<double>(stats.latency.p50_ns()) * 1e-6;
  point.p95_ms = static_cast<double>(stats.latency.p95_ns()) * 1e-6;
  point.p99_ms = static_cast<double>(stats.latency.p99_ns()) * 1e-6;
  return point;
}

}  // namespace

int main() {
  const RunScale scale = run_scale();
  const int clients = env_int("FTPIM_CLIENTS", 4);
  const int total_requests = env_int("FTPIM_REQS", scale.name == "quick" ? 512 : 2048);

  std::printf("=== serve throughput: batch size x replica count ===\n");
  std::printf("model: SmallCNN | img: %dx%d | requests: %d | clients: %d | scale: %s | "
              "threads: %d\n\n",
              scale.image_size, scale.image_size, total_requests, clients,
              scale.name.c_str(), ftpim::num_threads());

  SynthVisionConfig data_cfg;
  data_cfg.num_classes = 10;
  data_cfg.image_size = scale.image_size;
  data_cfg.samples = 256;
  const auto data = make_synthvision(data_cfg, 3);

  SmallCnnConfig model_cfg;
  model_cfg.image_size = scale.image_size;
  const auto model = make_small_cnn(model_cfg);

  const std::vector<std::int64_t> batch_sizes = {1, 4, 16};
  const std::vector<int> replica_counts = {1, 2, 4};

  ftpim::bench::BenchJsonWriter json("serve_throughput");
  json.meta()
      .num("threads", ftpim::num_threads())
      .str("dispatch",
           ftpim::kernels::kernel_level_name(ftpim::kernels::active_kernel_level()))
      .num("requests", total_requests)
      .num("clients", clients)
      .str("scale", scale.name);

  std::printf("%6s %9s %10s %6s %9s %9s %9s\n", "batch", "replicas", "req/s", "fill",
              "p50(ms)", "p95(ms)", "p99(ms)");
  for (const int replicas : replica_counts) {
    for (const std::int64_t batch : batch_sizes) {
      const SweepPoint p =
          run_point(*model, *data, batch, replicas, clients, total_requests);
      std::printf("%6lld %9d %10.0f %6.2f %9.3f %9.3f %9.3f\n",
                  static_cast<long long>(p.batch), p.replicas, p.reqs_per_sec, p.fill,
                  p.p50_ms, p.p95_ms, p.p99_ms);
      json.point()
          .num("batch", static_cast<double>(p.batch))
          .num("replicas", p.replicas)
          .str("engine", "float")
          .num("reqs_per_sec", p.reqs_per_sec)
          .num("batch_fill", p.fill)
          .num("p50_ms", p.p50_ms)
          .num("p95_ms", p.p95_ms)
          .num("p99_ms", p.p99_ms);
    }
  }

  // One quantized-replica point: the same fleet served through int8 crossbar
  // engines (16 levels, 8-bit ADC) so BENCH_serve.json records the cost of
  // hardware-faithful deployment relative to the float fold-in path.
  {
    const SweepPoint p = run_point(*model, *data, /*max_batch=*/16, /*replicas=*/2, clients,
                                   total_requests, ReplicaEngine::kQuantized);
    std::printf("%6lld %9d %10.0f %6.2f %9.3f %9.3f %9.3f  (quantized)\n",
                static_cast<long long>(p.batch), p.replicas, p.reqs_per_sec, p.fill, p.p50_ms,
                p.p95_ms, p.p99_ms);
    json.point()
        .num("batch", static_cast<double>(p.batch))
        .num("replicas", p.replicas)
        .str("engine", "quantized")
        .num("reqs_per_sec", p.reqs_per_sec)
        .num("batch_fill", p.fill)
        .num("p50_ms", p.p50_ms)
        .num("p95_ms", p.p95_ms)
        .num("p99_ms", p.p99_ms);
  }

  // Same quantized fleet with ABFT checksum verification armed: the delta
  // against the point above is the serving-layer cost of online detection.
  {
    const SweepPoint p = run_point(*model, *data, /*max_batch=*/16, /*replicas=*/2, clients,
                                   total_requests, ReplicaEngine::kQuantized, /*abft=*/true);
    std::printf("%6lld %9d %10.0f %6.2f %9.3f %9.3f %9.3f  (quantized+abft)\n",
                static_cast<long long>(p.batch), p.replicas, p.reqs_per_sec, p.fill, p.p50_ms,
                p.p95_ms, p.p99_ms);
    json.point()
        .num("batch", static_cast<double>(p.batch))
        .num("replicas", p.replicas)
        .str("engine", "quantized_abft")
        .num("reqs_per_sec", p.reqs_per_sec)
        .num("batch_fill", p.fill)
        .num("p50_ms", p.p50_ms)
        .num("p95_ms", p.p95_ms)
        .num("p99_ms", p.p99_ms);
  }
  json.write(env_string("FTPIM_BENCH_JSON", "BENCH_serve.json"));
  return 0;
}
