// Reproduces Table I (top): CIFAR-10, ResNet-20 — accuracy of FT models
// trained at different P_sa^T, evaluated across target testing SAF rates.
#include "table1_runner.hpp"

int main() {
  using namespace ftpim;
  using namespace ftpim::bench;
  Experiment exp(ExperimentConfig{.classes = 10,
                                  .resnet_depth = 20,
                                  .scale = run_scale(),
                                  .seed = static_cast<std::uint64_t>(env_int("FTPIM_SEED", 2024)),
                                  .verbose = false});
  const Table1Result result = run_table1(exp, "Table I (CIFAR-10, ResNet-20)");
  check_table1_shape(result);
  return 0;
}
