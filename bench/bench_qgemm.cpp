// Int8 quantized-MVM kernel throughput (BENCH_qgemm.json).
//
// Times the qgemm backend — the integer compute core of the quantized
// crossbar engine — at crossbar-tile shapes: int8 scalar vs AVX2, against
// the float packed GEMM at the same (m, n, k) as the reference point. B is
// packed OUTSIDE the timed region (tiles pack once per program/fault event,
// never per MVM), matching how the engine amortizes it.
//
// Also measures the end-to-end QuantizedCrossbarEngine::mvm_batch against
// CrossbarEngine::mvm_batch on a Linear-layer-sized matrix, so the JSON
// records what a deployed replica actually pays per batch.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/common/config.hpp"
#include "src/common/parallel.hpp"
#include "src/common/rng.hpp"
#include "src/common/timer.hpp"
#include "src/reram/crossbar_engine.hpp"
#include "src/reram/qinfer/quantized_engine.hpp"
#include "src/tensor/gemm.hpp"
#include "src/tensor/kernels/dispatch.hpp"
#include "src/tensor/kernels/qgemm.hpp"
#include "src/tensor/tensor.hpp"

namespace {

using namespace ftpim;

struct QShape {
  std::int64_t m, n, k;
};

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  Tensor t(std::move(shape));
  Rng rng(seed);
  for (std::int64_t i = 0; i < t.numel(); ++i) t[i] = rng.normal();
  return t;
}

/// Best-of-3 GOP/s (1 op = one multiply-accumulate pair, matching the float
/// GFLOP/s convention of 2*m*n*k) over ~50ms of repetitions.
template <typename Fn>
double time_gops(const QShape& s, const Fn& fn) {
  const double ops =
      2.0 * static_cast<double>(s.m) * static_cast<double>(s.n) * static_cast<double>(s.k);
  Timer warm;
  fn();
  const double once = std::max(warm.seconds(), 1e-7);
  const int reps = std::max(1, static_cast<int>(0.05 / once));
  double best = 1e30;
  for (int trial = 0; trial < 3; ++trial) {
    Timer t;
    for (int r = 0; r < reps; ++r) fn();
    best = std::min(best, t.seconds() / reps);
  }
  return ops / best * 1e-9;
}

void run_kernel_sweep(bench::BenchJsonWriter& json) {
  // Tile-shaped (n = bitlines <= 128, k = wordlines) plus one Linear-like
  // batch GEMM and a ragged shape hitting every edge path.
  const std::vector<QShape> shapes = {
      {32, 128, 128}, {128, 128, 128}, {256, 128, 128}, {64, 128, 512},
      {256, 64, 256}, {37, 51, 129},
  };

  std::vector<kernels::KernelLevel> levels = {kernels::KernelLevel::kScalar};
  if (kernels::avx2_available()) levels.push_back(kernels::KernelLevel::kAvx2);

  set_num_threads(1);
  std::printf("=== int8 qmvm kernel sweep (single thread) ===\n");
  std::printf("%18s %12s %12s %12s\n", "shape (m,n,k)", "kernel", "GOP/s", "vs float");
  for (const QShape& s : shapes) {
    // Operands at the datapath's real ranges: int8 codes, u8 level indices.
    Rng rng(7);
    const std::int64_t lda = s.k + (s.k & 1);
    std::vector<std::int8_t> a(static_cast<std::size_t>(s.m * lda), 0);
    for (std::int64_t i = 0; i < s.m; ++i) {
      for (std::int64_t p = 0; p < s.k; ++p) {
        a[static_cast<std::size_t>(i * lda + p)] =
            static_cast<std::int8_t>(static_cast<int>(rng.uniform_int(255)) - 127);
      }
    }
    std::vector<std::uint8_t> b(static_cast<std::size_t>(s.k * s.n));
    for (auto& v : b) v = static_cast<std::uint8_t>(rng.uniform_int(16));
    std::vector<std::uint8_t> packed(kernels::packed_levels_bytes(s.k, s.n));
    kernels::pack_levels(b.data(), s.k, s.n, s.n, packed.data());
    std::vector<std::int32_t> c(static_cast<std::size_t>(s.m * s.n));

    // Float reference at the same shape through the packed backend.
    const Tensor fa = random_tensor(Shape{s.m, s.k}, 1);
    const Tensor fb = random_tensor(Shape{s.k, s.n}, 2);
    Tensor fc(Shape{s.m, s.n});
    const double float_gf = time_gops(
        s, [&] { gemm(s.m, s.n, s.k, 1.0f, fa.data(), fb.data(), 0.0f, fc.data()); });

    char shape_buf[48];
    std::snprintf(shape_buf, sizeof(shape_buf), "%lldx%lldx%lld", static_cast<long long>(s.m),
                  static_cast<long long>(s.n), static_cast<long long>(s.k));
    std::printf("%18s %12s %12.2f %12s\n", shape_buf, "float", float_gf, "1.00x");
    json.point()
        .num("m", static_cast<double>(s.m))
        .num("n", static_cast<double>(s.n))
        .num("k", static_cast<double>(s.k))
        .str("kernel", "float_packed")
        .num("gops", float_gf)
        .num("speedup_vs_float", 1.0);

    for (const kernels::KernelLevel level : levels) {
      const kernels::QmvmKernel kern = kernels::select_qmvm_kernel(level);
      const double gf = time_gops(
          s, [&] { kern(s.m, s.n, s.k, a.data(), lda, packed.data(), c.data(), s.n); });
      char name[16];
      std::snprintf(name, sizeof(name), "int8_%s", kernels::kernel_level_name(level));
      std::printf("%18s %12s %12.2f %11.2fx\n", shape_buf, name, gf, gf / float_gf);
      json.point()
          .num("m", static_cast<double>(s.m))
          .num("n", static_cast<double>(s.n))
          .num("k", static_cast<double>(s.k))
          .str("kernel", name)
          .num("gops", gf)
          .num("speedup_vs_float", gf / float_gf);
    }
  }
  set_num_threads(0);
}

void run_engine_point(bench::BenchJsonWriter& json) {
  // A Linear-layer-sized deployment: batch 64 through 512 -> 256.
  const std::int64_t batch = 64, out = 256, in = 512;
  const Tensor w = random_tensor(Shape{out, in}, 11);
  const Tensor x = random_tensor(Shape{batch, in}, 13);
  std::vector<float> y(static_cast<std::size_t>(batch * out));

  CrossbarEngineConfig fc;
  fc.quant_levels = 16;
  const CrossbarEngine fe(w, fc);
  qinfer::QuantizedEngineConfig qc;
  qc.levels = 16;
  const qinfer::QuantizedCrossbarEngine qe(w, qc);

  const QShape s{batch, out, in};
  const double float_gf = time_gops(s, [&] { fe.mvm_batch(x.data(), batch, y.data()); });
  const double quant_gf = time_gops(s, [&] { qe.mvm_batch(x.data(), batch, y.data()); });
  std::printf("\n=== engine mvm_batch (batch=%lld, %lldx%lld, threads=default) ===\n",
              static_cast<long long>(batch), static_cast<long long>(out),
              static_cast<long long>(in));
  std::printf("%20s %12.2f GOP/s\n", "CrossbarEngine", float_gf);
  std::printf("%20s %12.2f GOP/s (%.2fx)\n", "QuantizedEngine", quant_gf, quant_gf / float_gf);
  json.point()
      .str("kernel", "engine_float_mvm_batch")
      .num("m", static_cast<double>(batch))
      .num("n", static_cast<double>(out))
      .num("k", static_cast<double>(in))
      .num("gops", float_gf)
      .num("speedup_vs_float", 1.0);
  json.point()
      .str("kernel", "engine_quantized_mvm_batch")
      .num("m", static_cast<double>(batch))
      .num("n", static_cast<double>(out))
      .num("k", static_cast<double>(in))
      .num("gops", quant_gf)
      .num("speedup_vs_float", quant_gf / float_gf);
}

}  // namespace

int main() {
  bench::BenchJsonWriter json("qgemm_kernels");
  json.meta()
      .num("threads", 1)
      .str("default_level", kernels::kernel_level_name(kernels::active_kernel_level()))
      .num("avx2_available", kernels::avx2_available() ? 1 : 0);
  run_kernel_sweep(json);
  run_engine_point(json);
  json.write(env_string("FTPIM_BENCH_JSON", "BENCH_qgemm.json"));
  return 0;
}
